(* Static access-pattern classification: the analysis that decides, per
   may-heap access site, which side of the hybrid data plane should own
   it.

   Streaming sites walk an affine stride over a loop-invariant base in a
   counted loop (the shape {!Induction.strided_accesses} detects) —
   chunking and prefetching win there, so the guard path keeps them.
   Pointer-chasing sites compute their address through loaded pointers
   (a dereference chain: list/tree traversal, hash-bucket probing) —
   every hop is a dependent miss the guard fast path only taxes, so the
   page-fault path serves them at page granularity instead. Sites
   showing both kinds of evidence are Mixed, sites showing neither are
   Unknown; both default to the guard side, which is always safe (the
   runtime custody check filters untracked pointers dynamically).

   The classification is evidence, not proof: the route pass consumes it
   as advice, and the coverage checker re-proves the resulting split
   structurally (exactly one mechanism per access) without ever
   consulting this module. *)

type cls = Streaming | Pointer_chase | Mixed | Unknown

let cls_to_string = function
  | Streaming -> "streaming"
  | Pointer_chase -> "pointer-chase"
  | Mixed -> "mixed"
  | Unknown -> "unknown"

type site = {
  instr_id : int;
  block : string;
  is_store : bool;
  size : int;  (** bytes per access *)
  cls : cls;
  stride : int option;  (** byte stride when streaming evidence exists *)
  chain_depth : int;  (** loaded-pointer hops in the address chain *)
  shape : string option;
      (** structure kind at the accessed allocation site, when the shape
          analysis resolved one (list/tree/graph/scalar) *)
  density : float;
      (** estimated useful fraction of a fetched line/page at this site:
          [size/|stride|] (capped at 1.0) for streaming, [size/4096] for
          a page-granular fetch at a chasing site, 1.0 otherwise *)
  rationale : string;  (** deterministic one-line evidence summary *)
}

type t = { fname : string; sites : site list (* ascending instr_id *) }

let sites t = t.sites
let site_of t id = List.find_opt (fun s -> s.instr_id = id) t.sites

let page_bytes = 4096

(* How many loaded-pointer hops feed the address computation. Follows
   gep/phi/select/call chains; a [Load] contributes one hop and keeps
   chasing through its own pointer (bounded by [visited] — the
   cur = phi(head, load cur) cycle of a list traversal terminates with
   depth 1). Interprocedural assist: a callee whose summary returns
   [From_arg i] is a pass-through helper, so the chase continues into
   the corresponding argument. *)
let chain_depth_of ?summaries du v =
  let rec go visited v =
    match v with
    | Ir.Const _ | Ir.Constf _ | Ir.Sym _ | Ir.Arg _ -> 0
    | Ir.Reg id -> (
        if List.mem id visited then 0
        else
          let visited = id :: visited in
          match Defuse.def du id with
          | None -> 0
          | Some i -> (
              match i.Ir.kind with
              | Ir.Gep { base; _ } -> go visited base
              | Ir.Load { ptr; is_float = false; _ } -> 1 + go visited ptr
              | Ir.Phi incoming ->
                  List.fold_left
                    (fun acc (_, v) -> max acc (go visited v))
                    0 incoming
              | Ir.Select (_, a, b) -> max (go visited a) (go visited b)
              | Ir.Binop ((Ir.Add | Ir.Sub), a, b) ->
                  max (go visited a) (go visited b)
              | Ir.Call { callee; args } -> (
                  match summaries with
                  | None -> 0
                  | Some env -> (
                      match Summary.lookup env callee with
                      | Some { Summary.ret = Summary.From_arg j; _ } -> (
                          match List.nth_opt args j with
                          | Some a -> go visited a
                          | None -> 0)
                      | _ -> 0))
              | _ -> 0))
  in
  go [] v

let classify_access ?summaries ?shapes du strided_tbl ~fname (b : Ir.block)
    (i : Ir.instr) ~ptr ~size ~is_store =
  let stream = Hashtbl.find_opt strided_tbl i.Ir.id in
  let local_depth = chain_depth_of ?summaries du ptr in
  (* Shape facts see through helpers the local walk cannot: calling
     contexts give arguments their callers' chain depths and callee
     ret_hops continue chains across calls. The local walk is a subset,
     so the shape depth only ever refines Unknown toward Pointer_chase —
     never the other way. *)
  let depth, shape =
    match shapes with
    | None -> (local_depth, None)
    | Some sh ->
        ( max local_depth (Shape.value_depth sh ~fname (Defuse.def du) ptr),
          Option.map Shape.kind_to_string
            (Shape.value_kind sh ~fname (Defuse.def du) ptr) )
  in
  let via_helpers = depth > local_depth in
  let cls, rationale =
    match (stream, depth) with
    | Some (sa : Induction.strided_access), 0 ->
        ( Streaming,
          Printf.sprintf "affine stride %dB via iv %%%d (step %d) in loop @%s"
            sa.Induction.byte_stride sa.Induction.iv.Induction.phi_id
            sa.Induction.iv.Induction.step sa.Induction.iv.Induction.header )
    | Some sa, _ ->
        ( Mixed,
          Printf.sprintf
            "stride %dB in loop @%s but address chains through %d loaded \
             pointer%s%s"
            sa.Induction.byte_stride sa.Induction.iv.Induction.header depth
            (if depth = 1 then "" else "s")
            (if via_helpers then " (shape: through helpers)" else "") )
    | None, d when d > 0 ->
        ( Pointer_chase,
          Printf.sprintf "address chains through %d loaded pointer%s%s" d
            (if d = 1 then "" else "s")
            (if via_helpers then " (shape: through helpers)" else "") )
    | None, _ -> (Unknown, "no loop stride, no loaded-pointer chain")
  in
  let stride =
    match stream with
    | Some sa -> Some sa.Induction.byte_stride
    | None -> None
  in
  let density =
    match (cls, stride) with
    | Streaming, Some st when st <> 0 ->
        min 1.0 (float_of_int size /. float_of_int (abs st))
    | (Pointer_chase | Mixed), _ ->
        float_of_int size /. float_of_int page_bytes
    | _ -> 1.0
  in
  {
    instr_id = i.Ir.id;
    block = b.Ir.label;
    is_store;
    size;
    cls;
    stride;
    chain_depth = depth;
    shape;
    density;
    rationale;
  }

let analyze ?summaries ?shapes (f : Ir.func) =
  let alias = Alias.analyze ?summaries f in
  let du = Defuse.build f in
  let loop_info = Loops.analyze f in
  let ind = Induction.analyze f in
  (* One table of every strided access in the function, keyed by the
     access instruction (strided_accesses reports only the innermost
     loop's own accesses, so ids never collide across loops). *)
  let strided_tbl = Hashtbl.create 64 in
  List.iter
    (fun loop ->
      List.iter
        (fun (sa : Induction.strided_access) ->
          if sa.Induction.byte_stride <> 0 then
            Hashtbl.replace strided_tbl sa.Induction.instr_id sa)
        (Induction.strided_accesses ind loop))
    (Loops.loops loop_info);
  let sites = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Load { ptr; size; _ } when Alias.needs_guard alias ptr ->
              sites :=
                classify_access ?summaries ?shapes du strided_tbl
                  ~fname:f.Ir.fname b i ~ptr ~size ~is_store:false
                :: !sites
          | Ir.Store { ptr; size; _ } when Alias.needs_guard alias ptr ->
              sites :=
                classify_access ?summaries ?shapes du strided_tbl
                  ~fname:f.Ir.fname b i ~ptr ~size ~is_store:true
                :: !sites
          | _ -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  {
    fname = f.Ir.fname;
    sites =
      List.sort (fun a b -> compare a.instr_id b.instr_id) !sites;
  }

(* Deterministic dump, one line per site in ascending instruction order:
   the `classify` CLI subcommand prints this and CI byte-compares two
   runs of it. *)
let dump (t : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "access-pattern %s: %d may-heap site(s)\n" t.fname
       (List.length t.sites));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %%%-4d %-5s %dB @%-12s %-13s stride=%-6s chain=%d \
            shape=%-6s density=%.4f  [%s]\n"
           s.instr_id
           (if s.is_store then "store" else "load")
           s.size s.block (cls_to_string s.cls)
           (match s.stride with
           | Some st -> string_of_int st
           | None -> "-")
           s.chain_depth
           (match s.shape with Some k -> k | None -> "-")
           s.density s.rationale))
    t.sites;
  Buffer.contents buf
