(** Induction-variable and strided-access detection.

    TrackFM's loop chunking pass needs to know, for each loop, which memory
    accesses walk an affine function of a loop-governing induction
    variable over a loop-invariant base pointer. NOELLE finds induction
    variables as patterns in the dependence graph rather than by syntactic
    variable matching; we mirror that by chasing def-use chains through
    arithmetic, so IVs survive intermediate [add]/[mul]/[shl] rewrites. *)

type iv = {
  phi_id : int;            (** register id of the header phi *)
  init : Ir.value;         (** value on loop entry *)
  step : int;              (** constant per-iteration increment *)
  header : string;         (** loop header label *)
  bound : Ir.value option; (** loop-governing bound when the header exits on
                               [iv < bound] (or [<=]) with invariant bound *)
}

type strided_access = {
  instr_id : int;          (** the load or store *)
  block : string;
  is_store : bool;
  access_size : int;       (** bytes per access *)
  base : Ir.value;         (** loop-invariant base pointer *)
  gep_offset : int;        (** constant byte displacement of the access *)
  iv : iv;
  byte_stride : int;       (** bytes advanced per loop iteration *)
}

type t

val const_of : Defuse.t -> Ir.value -> int option
(** Evaluate a value as a compile-time constant by chasing simple
    arithmetic defs. *)

val increment_of : Defuse.t -> int -> Ir.value -> int option
(** Does the value compute [phi + constant] (through an add/sub chain)?
    Returns the net constant increment. *)

val analyze : Ir.func -> t

val ivs_of_loop : t -> Loops.loop -> iv list

val strided_accesses : t -> Loops.loop -> strided_access list
(** Accesses inside the given loop (not in nested sub-loops) whose address
    is [base + (a*iv + b) * scale + offset] with invariant [base]. *)

val is_loop_invariant : t -> Loops.loop -> Ir.value -> bool
