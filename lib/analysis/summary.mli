(** Interprocedural function summaries: return-value provenance,
    per-parameter escape, mod/ref effects, and custody preservation,
    computed by a bottom-up fixpoint over call-graph SCCs.

    Unknown external callees pin their callers at the conservative
    bottom. Recursive SCCs are seeded optimistically and iterated to a
    fixpoint; custody-safety is a greatest fixpoint, matching the
    checker's independent reachability-based re-derivation. *)

type prov =
  | Pnone  (** no pointer flows here (float math, comparisons) *)
  | Pheap
  | Pstack
  | Pglobal
  | From_arg of int
      (** derived from parameter [i]; offsets (GEPs) included *)
  | Punknown

type effects = {
  reads_heap : bool;
  writes_heap : bool;
  allocs : bool;
  frees : bool;
  calls_unknown : bool;  (** calls an external we have no body for *)
}

type fsum = {
  ret : prov;
  escapes : bool array;
      (** per parameter; tracks directly-flowing chains (stored, freed,
          or passed onward to an escaping position) *)
  eff : effects;
  custody_safe : bool;
      (** a call to this function preserves the caller's custody facts:
          no store, alloc, free, chunk-release, or write guard anywhere
          in its reachable call tree, all of which stays in-module *)
}

type env

val compute : ?max_rounds:int -> Ir.modul -> env
(** [max_rounds] (default 50) caps each recursive SCC's fixpoint
    iteration; tripping it degrades the SCC to the sound bottom. Tests
    pass 0 to force the tripwire and exercise the lint's diagnosis. *)

val lookup : env -> string -> fsum option

val set : env -> string -> fsum -> unit
(** Overwrite a summary in place. Exists so tests can inject a
    deliberately wrong summary and watch the checker catch it. *)

val call_clobbers : ?env:env -> string -> bool
(** Custody predicate for a call site. Intrinsic callees keep their
    {!Intrinsics.clobbers_custody} semantics; other callees clobber
    unless [env] proves them custody-safe. Without [env] every
    non-intrinsic call clobbers — the pre-interprocedural behavior. *)

val bottom : nparams:int -> fsum
val is_bottom : fsum -> bool
val may_heap : prov -> bool

val fsum_to_string : fsum -> string

val annotate : env -> Ir.instr -> string option
(** [!summary ...] comment for call instructions to non-intrinsic
    callees; [None] for everything else. *)

val to_string : Ir.modul -> env -> string
(** Deterministic dump: call graph (bottom-up SCCs, recursion marked)
    followed by each function's summary in module order. *)

val lint : Ir.modul -> env -> string list
(** Summary-coverage lint: one line per function stuck at bottom,
    naming the cause — a direct unknown callee (named), an opaque
    defined callee that reaches unknown externals (both named), or the
    recursive-SCC fixpoint round cap. Empty when every function has a
    precise summary. *)
