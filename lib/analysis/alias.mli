(** Pointer-origin classification.

    TrackFM's guard-check analysis marks loads and stores that may touch
    heap memory and skips accesses that provably target the stack or
    globals (the paper leverages NOELLE's PDG and alias analyses for
    this). We implement a flow-insensitive lattice over registers:

    {v Bottom < Heap | Stack | Global < Unknown v}

    [alloca] yields Stack, allocation calls yield Heap, [Sym] is Global,
    loaded pointers and arguments are Unknown. [gep] preserves the class of
    its base; [phi]/[select] join. A guard is required unless the pointer
    is provably Stack or Global — guarding Unknown is safe because the
    runtime custody check filters non-TrackFM pointers dynamically. *)

type cls = Bottom | Heap | Stack | Global | Unknown

type t

val analyze : ?summaries:Summary.env -> Ir.func -> t
(** With [summaries], call results consult the callee's interprocedural
    summary: wrapper allocators classify [Heap], helpers that return an
    argument (or something stack/global) inherit that precision, and
    only genuinely unknown callees stay [Unknown]. *)

val classify : t -> Ir.value -> cls

val needs_guard : t -> Ir.value -> bool
(** [true] unless the pointer is provably Stack or Global. *)

val pp_cls : Format.formatter -> cls -> unit
