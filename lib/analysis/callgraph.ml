(* Module-level call graph over direct calls.

   The IR has no indirect calls: every callee is a string. Names the
   runtime-ABI table ({!Intrinsics.classify}) recognizes are not edges —
   they are leaves with fixed semantics. Everything else either resolves
   to a function defined in the module (a graph edge) or is an unknown
   external callee, recorded so the summary fixpoint can pin the caller
   at its conservative bottom and the summary-coverage lint can say
   why. *)

type node = {
  name : string;
  callees : string list;  (* defined direct callees, first-call order *)
  unknown_callees : string list;  (* undefined non-intrinsic callees *)
}

type t = {
  nodes : (string * node) list;  (* module order *)
  sccs : string list list;  (* bottom-up: callees' SCCs first *)
  in_cycle : (string, unit) Hashtbl.t;
}

let node_of defined (f : Ir.func) =
  let seen_d = Hashtbl.create 8 and seen_u = Hashtbl.create 8 in
  let dc = ref [] and uc = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Call { callee; _ }
            when Intrinsics.classify callee = Intrinsics.Unknown ->
              if Hashtbl.mem defined callee then begin
                if not (Hashtbl.mem seen_d callee) then begin
                  Hashtbl.replace seen_d callee ();
                  dc := callee :: !dc
                end
              end
              else if not (Hashtbl.mem seen_u callee) then begin
                Hashtbl.replace seen_u callee ();
                uc := callee :: !uc
              end
          | _ -> ())
        b.instrs)
    f.blocks;
  {
    name = f.fname;
    callees = List.rev !dc;
    unknown_callees = List.rev !uc;
  }

(* Tarjan. SCCs complete in reverse topological order (an SCC is emitted
   only after every SCC it reaches), so reversing the completion list
   gives the bottom-up order the summary fixpoint wants. *)
let compute_sccs nodes =
  let node_tbl = Hashtbl.create 16 in
  List.iter (fun (name, n) -> Hashtbl.replace node_tbl name n) nodes;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec connect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          connect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Hashtbl.find node_tbl v).callees;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then List.rev (w :: acc) else pop (w :: acc)
        | [] -> assert false
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun (name, _) -> if not (Hashtbl.mem index name) then connect name) nodes;
  List.rev !sccs

let build (m : Ir.modul) =
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.fname ()) m.funcs;
  let nodes =
    List.map (fun (f : Ir.func) -> (f.fname, node_of defined f)) m.funcs
  in
  let sccs = compute_sccs nodes in
  let in_cycle = Hashtbl.create 8 in
  List.iter
    (fun scc ->
      match scc with
      | [ only ] ->
          let n = List.assoc only nodes in
          if List.mem only n.callees then Hashtbl.replace in_cycle only ()
      | members -> List.iter (fun f -> Hashtbl.replace in_cycle f ()) members)
    sccs;
  { nodes; sccs; in_cycle }

let node t name = List.assoc_opt name t.nodes
let sccs t = t.sccs
let is_recursive t name = Hashtbl.mem t.in_cycle name

(* Unknown external callees reachable from [name] through defined
   callees — the graph-structural "why is this function conservative"
   answer the summary lint reports. Deterministic: sorted, deduped. *)
let reaches_unknown t name =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      match node t n with
      | None -> ()
      | Some nd ->
          List.iter (fun u -> acc := u :: !acc) nd.unknown_callees;
          List.iter go nd.callees
    end
  in
  go name;
  List.sort_uniq compare !acc

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "call graph (bottom-up SCCs):\n";
  List.iter
    (fun scc ->
      let rec_mark =
        if List.exists (is_recursive t) scc then " (recursive)" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  [%s]%s\n" (String.concat " " scc) rec_mark);
      List.iter
        (fun name ->
          match node t name with
          | None -> ()
          | Some n ->
              if n.callees <> [] || n.unknown_callees <> [] then
                Buffer.add_string buf
                  (Printf.sprintf "    %s -> %s%s\n" name
                     (match n.callees with
                     | [] -> "-"
                     | l -> String.concat ", " l)
                     (match n.unknown_callees with
                     | [] -> ""
                     | l -> "  unknown: " ^ String.concat ", " l)))
        scc)
    t.sccs;
  Buffer.contents buf
