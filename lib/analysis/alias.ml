type cls = Bottom | Heap | Stack | Global | Unknown

type t = { classes : (int, cls) Hashtbl.t }

let join a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Unknown, _ | _, Unknown -> Unknown
  | Heap, Heap -> Heap
  | Stack, Stack -> Stack
  | Global, Global -> Global
  | (Heap | Stack | Global), (Heap | Stack | Global) -> Unknown

let is_heap_alloc_callee callee =
  Ir.is_alloc_call callee
  || callee = "tfm_malloc" || callee = "tfm_calloc" || callee = "tfm_realloc"

let cls_of_prov value_cls args = function
  | Summary.Pheap -> Heap
  | Summary.Pstack -> Stack
  | Summary.Pglobal -> Global
  | Summary.Pnone -> Bottom
  | Summary.From_arg k -> (
      (* Returns-its-argument helper: the result is as precise as what
         the caller passed in. *)
      match List.nth_opt args k with Some v -> value_cls v | None -> Unknown)
  | Summary.Punknown -> Unknown

let analyze ?summaries (f : Ir.func) =
  let classes = Hashtbl.create 64 in
  let value_cls = function
    | Ir.Const _ | Ir.Constf _ -> Bottom
    | Ir.Sym _ -> Global
    | Ir.Arg _ -> Unknown
    | Ir.Reg id -> ( try Hashtbl.find classes id with Not_found -> Bottom)
  in
  let transfer (i : Ir.instr) =
    match i.kind with
    | Ir.Alloca _ -> Stack
    | Ir.Call { callee; _ } when is_heap_alloc_callee callee -> Heap
    | Ir.Call { callee; args } -> (
        (* Wrapper allocators and pass-through helpers classify
           precisely when an interprocedural summary is available. *)
        match summaries with
        | None -> Unknown
        | Some env -> (
            match Summary.lookup env callee with
            | Some s when Intrinsics.classify callee = Intrinsics.Unknown ->
                cls_of_prov value_cls args s.Summary.ret
            | _ -> Unknown))
    | Ir.Gep { base; _ } -> value_cls base
    | Ir.Phi incoming ->
        List.fold_left (fun acc (_, v) -> join acc (value_cls v)) Bottom
          incoming
    | Ir.Select (_, a, b) -> join (value_cls a) (value_cls b)
    | Ir.Load { is_float = false; _ } -> Unknown
    | Ir.Load { is_float = true; _ } -> Bottom
    | Ir.Binop _ -> Unknown (* integer math may carry a cast pointer *)
    | Ir.Fbinop _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Si_to_fp _ | Ir.Fp_to_si _
    | Ir.Store _ ->
        Bottom
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.defines_value i.kind then begin
              let old = try Hashtbl.find classes i.id with Not_found -> Bottom in
              let nu = join old (transfer i) in
              if nu <> old then begin
                Hashtbl.replace classes i.id nu;
                changed := true
              end
            end)
          b.instrs)
      f.blocks
  done;
  { classes }

let classify t = function
  | Ir.Const _ | Ir.Constf _ -> Bottom
  | Ir.Sym _ -> Global
  | Ir.Arg _ -> Unknown
  | Ir.Reg id -> ( try Hashtbl.find t.classes id with Not_found -> Bottom)

let needs_guard t v =
  match classify t v with
  | Stack | Global -> false
  | Heap | Unknown | Bottom -> true

let pp_cls fmt c =
  Format.pp_print_string fmt
    (match c with
    | Bottom -> "bottom"
    | Heap -> "heap"
    | Stack -> "stack"
    | Global -> "global"
    | Unknown -> "unknown")
