(* Interprocedural function summaries.

   A bottom-up fixpoint over the call graph's SCCs computes, per
   function: return-value provenance, per-parameter escape, mod/ref
   effects, and — the property the trackfm passes actually spend —
   whether a call to the function preserves the caller's custody facts.

   Custody-safety deliberately mirrors the guard-coverage checker's own
   independent re-derivation ({!Coverage.module_call_clobbers}): a call
   preserves custody only if no reachable instruction in the callee (or
   anything it calls) stores to memory, allocates, frees, releases a
   chunk pin, or performs a write guard/chunk access, and every callee
   on the way is defined in the module. Stores clobber because custody
   facts may be anchored at memory slots; allocation and free because
   they can evict or invalidate; chunk-end because it releases the pins
   earlier chunk accesses established. Recursion is resolved
   optimistically (greatest fixpoint): a cycle clobbers custody only if
   some member actually contains a clobbering instruction, which is the
   same answer the checker's reachability pass computes.

   Unknown external callees pin their caller at bottom: we cannot see
   their bodies, so the caller may do anything. *)

type prov =
  | Pnone  (* no pointer flows here (float math, comparisons) *)
  | Pheap
  | Pstack
  | Pglobal
  | From_arg of int  (* derived from parameter i, offsets included *)
  | Punknown

type effects = {
  reads_heap : bool;
  writes_heap : bool;
  allocs : bool;
  frees : bool;
  calls_unknown : bool;  (* calls an external we have no body for *)
}

type fsum = {
  ret : prov;
  escapes : bool array;  (* per parameter; directly-tracked chains only *)
  eff : effects;
  custody_safe : bool;  (* calling this preserves caller custody facts *)
}

type env = (string, fsum) Hashtbl.t

let no_effects =
  {
    reads_heap = false;
    writes_heap = false;
    allocs = false;
    frees = false;
    calls_unknown = false;
  }

let all_effects =
  {
    reads_heap = true;
    writes_heap = true;
    allocs = true;
    frees = true;
    calls_unknown = true;
  }

let bottom ~nparams =
  {
    ret = Punknown;
    escapes = Array.make nparams true;
    eff = all_effects;
    custody_safe = false;
  }

let optimistic ~nparams =
  {
    ret = Pnone;
    escapes = Array.make nparams false;
    eff = no_effects;
    custody_safe = true;
  }

let is_bottom s = s.custody_safe = false && s.eff = all_effects

let prov_join a b =
  match (a, b) with
  | Pnone, x | x, Pnone -> x
  | _ when a = b -> a
  | _ -> Punknown

let may_heap = function
  | Pheap | Punknown | From_arg _ -> true
  | Pnone | Pstack | Pglobal -> false

let lookup (env : env) name = Hashtbl.find_opt env name
let set (env : env) name s = Hashtbl.replace env name s

(* The custody predicate clients consult at call sites. Intrinsic names
   keep their table semantics; for everything else the summary decides,
   and absence of a summary (external callee, or summaries disabled)
   means the call may do anything. *)
let call_clobbers ?env name =
  match Intrinsics.classify name with
  | Intrinsics.Unknown -> (
      match env with
      | None -> true
      | Some e -> (
          match lookup e name with
          | Some s -> not s.custody_safe
          | None -> true))
  | _ -> Intrinsics.clobbers_custody name

(* Map a callee's return provenance into the caller's frame. *)
let apply_ret value_prov args = function
  | From_arg k -> (
      match List.nth_opt args k with
      | Some v -> value_prov v
      | None -> Punknown)
  | p -> p

let summarize (env : env) (f : Ir.func) =
  let prov_tbl = Hashtbl.create 64 in
  let value_prov = function
    | Ir.Const _ | Ir.Constf _ -> Pnone
    | Ir.Sym _ -> Pglobal
    | Ir.Arg i -> From_arg i
    | Ir.Reg id -> ( try Hashtbl.find prov_tbl id with Not_found -> Pnone)
  in
  let transfer (i : Ir.instr) =
    match i.kind with
    | Ir.Alloca _ -> Pstack
    | Ir.Call { callee; args } -> (
        match Intrinsics.classify callee with
        | Intrinsics.Alloc -> Pheap
        | Intrinsics.Unknown -> (
            match lookup env callee with
            | Some s -> apply_ret value_prov args s.ret
            | None -> Punknown)
        | Intrinsics.Guard _ | Intrinsics.Chunk_access _ | Intrinsics.Page _ ->
            Punknown
        | Intrinsics.Free | Intrinsics.Chunk_end | Intrinsics.Neutral -> Pnone)
    | Ir.Gep { base; _ } -> value_prov base
    | Ir.Phi incoming ->
        List.fold_left
          (fun acc (_, v) -> prov_join acc (value_prov v))
          Pnone incoming
    | Ir.Select (_, a, b) -> prov_join (value_prov a) (value_prov b)
    | Ir.Load { is_float = false; _ } -> Punknown
    | Ir.Load { is_float = true; _ } -> Pnone
    | Ir.Binop _ -> Punknown (* integer math may carry a cast pointer *)
    | Ir.Fbinop _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Si_to_fp _ | Ir.Fp_to_si _
    | Ir.Store _ ->
        Pnone
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            if Ir.defines_value i.kind then begin
              let old =
                try Hashtbl.find prov_tbl i.id with Not_found -> Pnone
              in
              let nu = prov_join old (transfer i) in
              if nu <> old then begin
                Hashtbl.replace prov_tbl i.id nu;
                changed := true
              end
            end)
          b.instrs)
      f.blocks
  done;
  (* Effects, escapes, custody — one pass over the converged provenance. *)
  let eff = ref no_effects in
  let escapes = Array.make f.nparams false in
  let custody_safe = ref true in
  let mark_escape v =
    match value_prov v with
    | From_arg i when i < f.nparams -> escapes.(i) <- true
    | _ -> ()
  in
  let ret = ref Pnone in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Load { ptr; _ } ->
              if may_heap (value_prov ptr) then
                eff := { !eff with reads_heap = true }
          | Ir.Store { ptr; v; _ } ->
              custody_safe := false;
              if may_heap (value_prov ptr) then
                eff := { !eff with writes_heap = true };
              mark_escape v
          | Ir.Call { callee; args } -> (
              match Intrinsics.classify callee with
              | Intrinsics.Alloc ->
                  custody_safe := false;
                  eff := { !eff with allocs = true }
              | Intrinsics.Free ->
                  custody_safe := false;
                  eff := { !eff with frees = true };
                  List.iter mark_escape args
              | Intrinsics.Chunk_end -> custody_safe := false
              | Intrinsics.Guard { write }
              | Intrinsics.Chunk_access { write }
              | Intrinsics.Page { write } ->
                  if write then custody_safe := false;
                  eff :=
                    {
                      !eff with
                      reads_heap = true;
                      writes_heap = !eff.writes_heap || write;
                    }
              | Intrinsics.Neutral -> ()
              | Intrinsics.Unknown -> (
                  match lookup env callee with
                  | Some s ->
                      if not s.custody_safe then custody_safe := false;
                      eff :=
                        {
                          reads_heap = !eff.reads_heap || s.eff.reads_heap;
                          writes_heap = !eff.writes_heap || s.eff.writes_heap;
                          allocs = !eff.allocs || s.eff.allocs;
                          frees = !eff.frees || s.eff.frees;
                          calls_unknown =
                            !eff.calls_unknown || s.eff.calls_unknown;
                        };
                      List.iteri
                        (fun j a ->
                          let esc =
                            j >= Array.length s.escapes || s.escapes.(j)
                          in
                          if esc then mark_escape a)
                        args
                  | None ->
                      (* External body we cannot see: bottom at this site. *)
                      custody_safe := false;
                      eff := all_effects;
                      List.iter mark_escape args))
          | _ -> ())
        b.instrs;
      match b.term with
      | Ir.Ret (Some v) -> ret := prov_join !ret (value_prov v)
      | _ -> ())
    f.blocks;
  { ret = !ret; escapes; eff = !eff; custody_safe = !custody_safe }

(* [max_rounds] exists so tests can force the recursive-SCC tripwire
   (set it to 0) and watch the lint diagnose the cap; the default is far
   above what any real fixpoint needs. *)
let compute ?(max_rounds = 50) (m : Ir.modul) : env =
  let cg = Callgraph.build m in
  let env : env = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace funcs f.Ir.fname f) m.funcs;
  List.iter
    (fun scc ->
      let members = List.filter_map (Hashtbl.find_opt funcs) scc in
      let recursive =
        match scc with
        | [ only ] -> Callgraph.is_recursive cg only
        | _ -> true
      in
      if not recursive then
        List.iter (fun f -> set env f.Ir.fname (summarize env f)) members
      else begin
        (* Optimistic seed, then iterate to the greatest fixpoint. The
           lattice is finite (effects grow, custody shrinks, provenance
           has height 2), so this converges; the cap is a tripwire, and
           tripping it degrades to the sound bottom. *)
        List.iter
          (fun f ->
            set env f.Ir.fname (optimistic ~nparams:f.Ir.nparams))
          members;
        let rounds = ref 0 and stable = ref false in
        while (not !stable) && !rounds < max_rounds do
          incr rounds;
          stable := true;
          List.iter
            (fun f ->
              let nu = summarize env f in
              if nu <> Hashtbl.find env f.Ir.fname then begin
                set env f.Ir.fname nu;
                stable := false
              end)
            members
        done;
        if not !stable then
          List.iter
            (fun f -> set env f.Ir.fname (bottom ~nparams:f.Ir.nparams))
            members
      end)
    (Callgraph.sccs cg);
  env

let prov_to_string = function
  | Pnone -> "none"
  | Pheap -> "heap"
  | Pstack -> "stack"
  | Pglobal -> "global"
  | From_arg i -> Printf.sprintf "arg%d" i
  | Punknown -> "unknown"

let effects_to_string e =
  let tags =
    List.filter_map
      (fun (on, tag) -> if on then Some tag else None)
      [
        (e.reads_heap, "reads-heap");
        (e.writes_heap, "writes-heap");
        (e.allocs, "allocs");
        (e.frees, "frees");
        (e.calls_unknown, "calls-unknown");
      ]
  in
  if tags = [] then "pure" else String.concat "," tags

let fsum_to_string s =
  let esc =
    if Array.length s.escapes = 0 then "-"
    else
      String.concat ""
        (Array.to_list (Array.map (fun b -> if b then "E" else ".") s.escapes))
  in
  Printf.sprintf "ret=%s escapes=%s eff=%s custody=%s" (prov_to_string s.ret)
    esc (effects_to_string s.eff)
    (if s.custody_safe then "preserving" else "clobbering")

(* One-line annotation for call instructions in IR dumps. *)
let annotate (env : env) (i : Ir.instr) =
  match i.Ir.kind with
  | Ir.Call { callee; _ } when Intrinsics.classify callee = Intrinsics.Unknown
    -> (
      match lookup env callee with
      | Some s -> Some ("!summary " ^ fsum_to_string s)
      | None -> Some "!summary bottom (external)")
  | _ -> None

let to_string (m : Ir.modul) (env : env) =
  let cg = Callgraph.build m in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Callgraph.to_string cg);
  Buffer.add_string buf "summaries:\n";
  List.iter
    (fun (f : Ir.func) ->
      match lookup env f.Ir.fname with
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf "  %s/%d: %s\n" f.Ir.fname f.Ir.nparams
               (fsum_to_string s))
      | None -> ())
    m.funcs;
  Buffer.contents buf

(* Summary-coverage lint: which functions are stuck at (or near) bottom,
   and *why* — so the analysis's conservatism is visible, not silent.
   Three distinguishable causes, in diagnostic priority order:
   - the function itself calls an unknown external (named);
   - it reaches unknown externals only through defined callees — an
     opaque call, named along with what that callee reaches;
   - its whole call tree stays in the module yet it is still bottom,
     which only the recursive-SCC fixpoint tripwire can produce. *)
let lint (m : Ir.modul) (env : env) =
  let cg = Callgraph.build m in
  List.filter_map
    (fun (f : Ir.func) ->
      match lookup env f.Ir.fname with
      | Some s when s.eff.calls_unknown || is_bottom s ->
          let n = Callgraph.node cg f.Ir.fname in
          let direct =
            match n with Some n -> n.Callgraph.unknown_callees | None -> []
          in
          let why =
            if direct <> [] then
              "unknown callee(s): " ^ String.concat ", " direct
            else
              let reach = Callgraph.reaches_unknown cg f.Ir.fname in
              if reach <> [] then
                let via =
                  match n with
                  | Some n ->
                      List.filter
                        (fun c -> Callgraph.reaches_unknown cg c <> [])
                        n.Callgraph.callees
                  | None -> []
                in
                Printf.sprintf "opaque call(s): %s reach%s unknown %s"
                  (String.concat ", " via)
                  (match via with [ _ ] -> "es" | _ -> "")
                  (String.concat ", " reach)
              else if Callgraph.is_recursive cg f.Ir.fname then
                "recursive SCC tripped the fixpoint round cap"
              else "unresolved (no unknown callees in reach)"
          in
          Some (Printf.sprintf "%s: stuck at bottom (%s)" f.Ir.fname why)
      | _ -> None)
    m.funcs
