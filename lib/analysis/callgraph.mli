(** Module-level call graph over direct calls.

    Callee names the runtime-ABI table ({!Intrinsics.classify})
    recognizes (guards, chunk protocol, allocators, bookkeeping hooks)
    are leaves, not edges. Remaining names either resolve to a function
    defined in the module — a graph edge — or are recorded as unknown
    external callees, which pin their caller at the conservative bottom
    summary. *)

type node = {
  name : string;
  callees : string list;  (** defined direct callees, first-call order *)
  unknown_callees : string list;  (** undefined non-intrinsic callees *)
}

type t

val build : Ir.modul -> t

val node : t -> string -> node option

val sccs : t -> string list list
(** Strongly connected components in bottom-up order: every SCC appears
    after the SCCs it calls into, which is the evaluation order for the
    interprocedural summary fixpoint. *)

val is_recursive : t -> string -> bool
(** In a multi-function SCC, or calls itself directly. *)

val reaches_unknown : t -> string -> string list
(** Unknown external callees reachable from the function through
    defined callees (sorted, deduped) — empty iff its whole call tree
    stays in the module. *)

val to_string : t -> string
(** Deterministic text rendering: one line per SCC (bottom-up, recursive
    SCCs marked) plus the edges out of each member. *)
