(** Interprocedural shape analysis: recursive-structure detection that
    sees pointer chases through helper calls.

    A bottom-up fixpoint over {!Callgraph} SCCs infers, per allocation
    site, whether the allocated objects form a recursive linked
    structure (self-referential field stores: list / tree / DAG-ish
    graph) and which field offsets are link fields; and per function,
    [ret_hops] ("the return value is parameter [i] after [d] loaded
    hops", generalizing [Summary.From_arg] which is the [d = 0] case)
    plus a per-parameter chase-through depth. A second, top-down pass
    (callers first) then folds call-chain context into each function: the
    maximum chain depth and the allocation-site provenance flowing into
    every parameter — which is what lets a load *inside* a `node_next`
    helper classify as pointer-chasing with the caller's chain.

    Advice with a dynamic audit, never proof: {!Access_pattern} and the
    route pass consume these facts; the coverage checker re-proves the
    resulting guards-vs-paging split without reading them; and the
    interpreter's shadow recorder cross-checks claimed depths against
    observed ones in CI. *)

val depth_cap : int
(** Chain depths saturate here (statically and in the interpreter's
    shadow recorder, which mirrors the value); the saturation is what
    keeps the recursive-SCC fixpoint finite. *)

type struct_kind = Scalar | List | Tree | Graph

val kind_to_string : struct_kind -> string
val kind_is_recursive : struct_kind -> bool

type alloc_site = {
  alloc_id : int;
  alloc_block : string;
  kind : struct_kind;
  link_offsets : int list;  (** sorted distinct known link-field offsets *)
  unknown_link : bool;  (** a self-link whose field offset is unresolvable *)
}

type fshape = {
  ret_hops : (int * int) option;
      (** return value = parameter [i] after [d] loaded hops *)
  chases : int array;
      (** per parameter: max dependent-load depth performed on addresses
          derived from it (transitively through callees); [> 0] is the
          chase-through bit *)
  links : (int * int * int option) list;
      (** stores parameter [src] into a field of parameter [dst] *)
  allocs : alloc_site list;  (** ascending allocation instruction id *)
}

type gprov = Gbot | Gsite of string * int | Gtop
(** Module-global allocation-site provenance of a pointer value. *)

type ctx = {
  arg_depth : int array;
      (** max chain depth flowing into each parameter over all call
          chains, saturated at {!depth_cap} *)
  arg_struct : gprov array;
      (** allocation-site provenance flowing into each parameter *)
}

type env

val analyze : Ir.modul -> env
(** Both passes; deterministic for a given module. *)

val summary : env -> string -> fshape option
val context : env -> string -> ctx option
val site_of : env -> string * int -> alloc_site option
(** Allocation site by [(function, alloc instruction id)]. *)

val set : env -> string -> fshape -> unit
(** Tamper hook: tests inject a lying shape summary and watch the
    shadow validator (never the checker, which does not read shape
    facts) catch the misroute. *)

val set_context : env -> string -> ctx -> unit

val value_depth : env -> fname:string -> (int -> Ir.instr option) -> Ir.value -> int
(** Absolute chain depth of a value in [fname]'s body (a def lookup,
    e.g. [Defuse.def du]), with the calling context's per-parameter
    depths folded in and callee [ret_hops] continuing chains across
    calls. *)

val value_struct :
  env -> fname:string -> (int -> Ir.instr option) -> Ir.value -> (string * int) option
(** Allocation-site provenance of a value, when a single site is known;
    loads from a recursive structure's fields stay inside the structure
    (link closure). *)

val value_kind :
  env -> fname:string -> (int -> Ir.instr option) -> Ir.value -> struct_kind option

val fshape_to_string : fshape -> string

val dump : env -> Ir.modul -> string
(** Deterministic text dump (module order; allocation sites, summaries,
    contexts). The [shape] CLI subcommand prints this and CI
    byte-compares two runs. *)
