(** Library-based far memory: AIFM's remotable data structures.

    This is the paper's library baseline (AIFM, Ruan et al. OSDI '20): the
    application developer replaces containers with remote-aware versions
    and every access goes through a smart-pointer dereference under a
    DerefScope. Unlike TrackFM there are no guards on ordinary code — only
    data-structure operations pay overhead — but the programmer must port
    the code by hand.

    All structures share a {!ctx} holding the object pool, allocator and
    stride prefetcher. Element payloads are stored for real in the
    memstore, so reads return what was written. *)

type ctx

val create_ctx :
  ?backend:Net.backend ->
  ?faults:Faults.t ->
  ?cluster:Cluster.t ->
  Cost_model.t ->
  Clock.t ->
  Memstore.t ->
  object_size:int ->
  local_budget:int ->
  ctx
(** Default backend is [Tcp] (AIFM runs on Shenango's TCP stack).
    [faults] (default {!Faults.disabled}) makes the fabric adversarial;
    dereferences then retry with backoff, stalls block-with-yield when
    inside a Shenango task, and the evacuator defers dirty evictions
    during outages. [cluster] routes evictions and localizations through
    the replicated remote tier (failover reads, replica-aware
    writebacks, recovery resync from the evacuator loop). *)

val ctx_pool : ctx -> Pool.t
val ctx_clock : ctx -> Clock.t

(** {1 Remote array} *)

module Array : sig
  type t

  val create : ctx -> elem_size:int -> len:int -> t
  (** Allocates the backing region; elements start zeroed and local
      (freshly materialized), subject to eviction. *)

  val len : t -> int
  val elem_size : t -> int

  val get : t -> int -> int
  (** Smart-pointer dereference under a scope: localizes the containing
      object if needed, then reads the element (little-endian). *)

  val set : t -> int -> int -> unit

  val get_float : t -> int -> float
  (** Requires [elem_size >= 8]. *)

  val set_float : t -> int -> float -> unit

  val iter_prefetched : t -> (int -> int -> unit) -> unit
  (** Sequential iteration through AIFM's iterator classes: the smart
      pointer is dereferenced once per object (not per element), the
      object stays pinned for the duration of the pass over it, and the
      stride prefetcher runs ahead of the scan — the cost structure of
      the paper's remote array iterators. Calls [f index value]. *)

  val iter_prefetched_float : t -> (int -> float -> unit) -> unit
  (** Float variant; requires [elem_size >= 8]. *)

  val fold_range_float :
    t -> lo:int -> hi:int -> init:float -> (float -> float -> float) -> float
  (** Iterator-style scoped fold over elements [lo, hi): the smart
      pointer is dereferenced per object, not per element — what an AIFM
      port uses to aggregate a contiguous slice. *)
end

(** {1 Remote hashmap}

    Open-addressing (linear probing) table over a remote slot array; the
    analog of AIFM's remote HashMap used for key-value workloads. Keys
    and values are non-negative ints; key slots store [key + 1] so zero
    means empty. *)

module Hashmap : sig
  type t

  val create : ctx -> slots:int -> t
  (** [slots] is rounded up to a power of two. *)

  val put : t -> key:int -> value:int -> unit
  (** @raise Failure when the table is full. *)

  val get : t -> key:int -> int option
  val mem : t -> key:int -> bool
  val size : t -> int
end

(** {1 Remote vector}

    Growable remote array (AIFM's remote vector): amortized-O(1) push via
    capacity doubling, with the data migrated between far-memory regions
    on growth. *)

module Vector : sig
  type t

  val create : ctx -> elem_size:int -> t
  val length : t -> int
  val capacity : t -> int
  val push : t -> int -> unit
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val iter_prefetched : t -> (int -> int -> unit) -> unit
end

(** {1 Remote linked list}

    Singly-linked list with one far-memory node per element — the shape
    the paper uses to motivate small AIFM object sizes (a 64 B object per
    node). Traversal is pointer chasing: no prefetching can help, which
    is precisely why the paper contrasts it with arrays. *)

module List : sig
  type t

  val create : ctx -> t
  val push_front : t -> int -> unit
  val length : t -> int

  val fold : t -> init:int -> (int -> int -> int) -> int
  (** [fold t ~init f] walks front to back, localizing one node at a
      time. *)

  val nth : t -> int -> int option
end

(** {1 Remote queue}

    Bounded ring buffer over a far-memory region (AIFM's remote queue):
    producers and consumers touch disjoint ends, so the hot head/tail
    objects stay local while the bulk can be evacuated. *)

module Queue : sig
  type t

  val create : ctx -> capacity:int -> t
  val push : t -> int -> bool
  (** [false] when full. *)

  val pop : t -> int option
  val length : t -> int
  val is_full : t -> bool
end
