(* Metadata bits, one byte per object id. An id with byte 0 has never been
   allocated ("absent"): treated as remote-and-empty if ever localized. *)
let bit_exists = 0x01
let bit_local = 0x02
let bit_dirty = 0x04
let bit_hot = 0x08
let bit_prefetched = 0x10
let bit_swapped = 0x20 (* a remote copy exists *)

exception Out_of_local_memory

type policy = Clock_hand | Fifo

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  net : Net.t;
  policy : policy;
  osize : int;
  addr_of_id : int -> int;
  budget : int;
  mutable meta : Bytes.t;
  mutable used : int;
  mutable nlocal : int;
  clock_queue : int Queue.t; (* CLOCK second-chance candidate ring *)
  pins : (int, int) Hashtbl.t;
  mutable telemetry : Telemetry.Sink.t;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(policy = Clock_hand) ?(telemetry = Telemetry.Sink.nop)
    ?addr_of_id cost clock ~net ~object_size ~local_budget =
  if not (is_pow2 object_size && object_size >= 16 && object_size <= 65536)
  then invalid_arg "Pool.create: object_size";
  Telemetry.Sink.attach_net telemetry net;
  {
    cost;
    clock;
    net;
    policy;
    osize = object_size;
    (* Replication keys objects by their main-store base address; the
       default covers pools whose id space is the address space scaled
       by the object size (tests, simple heaps). *)
    addr_of_id =
      (match addr_of_id with
      | Some f -> f
      | None -> fun id -> id * object_size);
    budget = local_budget;
    meta = Bytes.make 4096 '\000';
    used = 0;
    nlocal = 0;
    clock_queue = Queue.create ();
    pins = Hashtbl.create 16;
    telemetry;
  }

let telemetry t = t.telemetry

let set_telemetry t sink =
  t.telemetry <- sink;
  Telemetry.Sink.attach_net sink t.net

let object_size t = t.osize
let local_budget t = t.budget
let local_used t = t.used
let local_count t = t.nlocal

let ensure_capacity t id =
  let n = Bytes.length t.meta in
  if id >= n then begin
    let n' = max (id + 1) (n * 2) in
    let meta' = Bytes.make n' '\000' in
    Bytes.blit t.meta 0 meta' 0 n;
    t.meta <- meta'
  end

let get_meta t id =
  if id < Bytes.length t.meta then Char.code (Bytes.get t.meta id) else 0

let set_meta t id m =
  ensure_capacity t id;
  Bytes.set t.meta id (Char.chr m)

let pinned t id =
  match Hashtbl.find_opt t.pins id with Some n -> n > 0 | None -> false

let pin t id =
  let n = try Hashtbl.find t.pins id with Not_found -> 0 in
  Hashtbl.replace t.pins id (n + 1)

let unpin t id =
  match Hashtbl.find_opt t.pins id with
  | Some n when n > 1 -> Hashtbl.replace t.pins id (n - 1)
  | Some _ -> Hashtbl.remove t.pins id
  | None -> invalid_arg "Pool.unpin: not pinned"

let is_local t id = get_meta t id land bit_local <> 0

(* One sweep step of the CLOCK hand. Returns true if something was
   evicted. Hot objects get a second chance; pinned objects are skipped
   (requeued) — this is the evacuator barrier of Section 3.3. With
   [allow_writeback:false] (remote unreachable: circuit breaker open)
   dirty objects are also skipped: their only copy cannot be pushed out,
   so the evacuator degrades to dropping clean objects. *)
let evict_one_with ~allow_writeback t =
  let attempts = ref (2 * Queue.length t.clock_queue) in
  let rec go () =
    if Queue.is_empty t.clock_queue || !attempts = 0 then false
    else begin
      decr attempts;
      let id = Queue.pop t.clock_queue in
      let m = get_meta t id in
      if m land bit_local = 0 then go () (* stale entry *)
      else if pinned t id then begin
        Queue.push id t.clock_queue;
        go ()
      end
      else if t.policy = Clock_hand && m land bit_hot <> 0 then begin
        set_meta t id (m land lnot bit_hot);
        Queue.push id t.clock_queue;
        go ()
      end
      else if (not allow_writeback) && m land bit_dirty <> 0 then begin
        Queue.push id t.clock_queue;
        go ()
      end
      else begin
        let swapped =
          if m land bit_dirty <> 0 then begin
            Net.writeback_object t.net ~key:(t.addr_of_id id) ~bytes:t.osize;
            Clock.count t.clock "aifm.writebacks" 1;
            Telemetry.Sink.writeback_event t.telemetry ~bytes:t.osize;
            bit_swapped
          end
          else m land bit_swapped
        in
        set_meta t id (bit_exists lor swapped);
        t.used <- t.used - t.osize;
        t.nlocal <- t.nlocal - 1;
        Clock.tick t.clock t.cost.Cost_model.evict_object;
        Clock.count t.clock "aifm.evictions" 1;
        Telemetry.Sink.evict_event t.telemetry;
        true
      end
    end
  in
  go ()

let evict_one t = evict_one_with ~allow_writeback:true t

(* The evacuator's degraded mode: while the remote is unreachable it
   sheds clean objects only, and if even that fails it defers — local
   memory absorbs the overshoot, and the next pressure event after
   recovery drains it back under budget (the [while] re-checks from the
   top). Only a pinned-everything state with a reachable remote is a
   genuine OOM. *)
let evict_until_fits t =
  (* Making room is charged to the eviction-stall category: resync
     orchestration, CLOCK sweeps, writeback enqueues and the eviction
     ticks themselves (transport stalls nested inside keep their own
     retry/failover attribution). *)
  Telemetry.Sink.cat_enter t.telemetry Telemetry.Span.Evict_stall;
  Fun.protect
    ~finally:(fun () -> Telemetry.Sink.cat_exit t.telemetry)
    (fun () ->
      (* The evacuator doubles as the recovery driver: each pressure event
         advances background re-replication onto any recovering node. *)
      ignore (Net.resync_step t.net : int);
      let deferred = ref false in
      while (not !deferred) && t.used > t.budget do
        let allow_writeback = Net.remote_available t.net in
        if evict_one_with ~allow_writeback t then ()
        else if allow_writeback then raise Out_of_local_memory
        else begin
          Clock.count t.clock "aifm.evictions_deferred" 1;
          deferred := true
        end
      done)

let make_local t id m =
  set_meta t id (m lor bit_exists lor bit_local lor bit_hot);
  t.used <- t.used + t.osize;
  t.nlocal <- t.nlocal + 1;
  Queue.push id t.clock_queue;
  (* The object being localized is in use by the caller (it is inside a
     guard or DerefScope): the evacuator must not pick it. *)
  pin t id;
  Fun.protect ~finally:(fun () -> unpin t id) (fun () -> evict_until_fits t)

let materialize t id =
  let m = get_meta t id in
  if m land bit_local = 0 then begin
    Clock.count t.clock "aifm.materialized" 1;
    make_local t id (m lor bit_dirty)
  end

let ensure_local t id =
  let m = get_meta t id in
  if m land bit_local <> 0 then
    set_meta t id (m lor bit_hot)
  else if m land bit_swapped = 0 then begin
    (* Never written (or never existed): fresh backing, no remote copy to
       fetch — the analogue of an anonymous first-touch fault. *)
    Clock.tick t.clock 50;
    Clock.count t.clock "aifm.materialized" 1;
    make_local t id (m land lnot bit_prefetched)
  end
  else begin
    (if m land bit_prefetched <> 0 then begin
       Net.fetch_object_prefetched t.net ~key:(t.addr_of_id id) ~bytes:t.osize;
       Telemetry.Sink.fetch_event t.telemetry ~bytes:t.osize ~prefetched:true
     end
     else begin
       Net.fetch_object t.net ~key:(t.addr_of_id id) ~bytes:t.osize;
       Clock.count t.clock "aifm.demand_fetches" 1;
       Telemetry.Sink.fetch_event t.telemetry ~bytes:t.osize ~prefetched:false
     end);
    make_local t id (m land lnot bit_prefetched)
  end

let mark_dirty t id =
  let m = get_meta t id in
  set_meta t id (m lor bit_dirty)

let mark_prefetched t id =
  let m = get_meta t id in
  (* Prefetching only makes sense for objects with a remote copy. *)
  if m land bit_local = 0 && m land bit_swapped <> 0 then
    set_meta t id (m lor bit_prefetched)

let discard t id =
  if not (pinned t id) then begin
    let m = get_meta t id in
    if m land bit_local <> 0 then begin
      t.used <- t.used - t.osize;
      t.nlocal <- t.nlocal - 1
    end;
    set_meta t id 0
  end
