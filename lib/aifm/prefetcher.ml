type stream = {
  mutable last : int;
  mutable stride : int;
  mutable confidence : int;
  mutable age : int;
}

type t = {
  pool : Pool.t;
  table : stream array;
  depth : int;
  mutable tick : int;
}

let create pool ?(streams = 8) ?(depth = 8) () =
  {
    pool;
    table =
      Array.init streams (fun _ ->
          { last = min_int; stride = 0; confidence = 0; age = 0 });
    depth;
    tick = 0;
  }

let issue t ~from ~stride =
  Telemetry.Sink.prefetch_event (Pool.telemetry t.pool) ~from ~stride
    ~depth:t.depth;
  for k = 1 to t.depth do
    let id = from + (k * stride) in
    if id >= 0 then Pool.mark_prefetched t.pool id
  done

let prefetch_exact t ~start ~stride =
  if stride <> 0 then issue t ~from:(start - stride) ~stride

let max_learnable_stride = 64

let access t id =
  t.tick <- t.tick + 1;
  let rec find i =
    if i >= Array.length t.table then None
    else
      let s = t.table.(i) in
      if s.last = min_int then find (i + 1)
      else if id = s.last then Some s (* repeat access: no new info *)
      else if s.stride <> 0 && id = s.last + s.stride then begin
        s.last <- id;
        s.confidence <- s.confidence + 1;
        s.age <- t.tick;
        Some s
      end
      else if s.stride = 0 && abs (id - s.last) <= max_learnable_stride
      then begin
        s.stride <- id - s.last;
        s.last <- id;
        s.confidence <- 1;
        s.age <- t.tick;
        Some s
      end
      else find (i + 1)
  in
  match find 0 with
  | Some s -> if s.confidence >= 2 then issue t ~from:id ~stride:s.stride
  | None ->
      (* Replace the least recently advanced stream. *)
      let victim =
        Array.fold_left
          (fun best s -> if s.age < best.age then s else best)
          t.table.(0) t.table
      in
      victim.last <- id;
      victim.stride <- 0;
      victim.confidence <- 0;
      victim.age <- t.tick
