(** AIFM-style object pool: the unified abstract data structure (ADS).

    All remotable memory is carved into fixed-size objects identified by
    dense ids (TrackFM derives the id from the non-canonical pointer by a
    shift). Each object is Local or Remote; local objects count against
    the compute node's local-memory budget and are evicted by a CLOCK
    second-chance evacuator when the budget is exceeded. Object *data*
    always lives in the shared {!Memsim.Memstore} so programs compute real
    results; locality is an accounting state that determines what each
    access costs and what crosses the simulated network.

    The paper's DerefScope pinning is modelled with per-object pin counts:
    the evacuator never evicts a pinned object, which is the invariant
    that makes TrackFM's fast-path guard sound (Section 3.3) and lets the
    loop-chunking locality guard hold an object across a whole chunk. *)

type t

type policy = Clock_hand | Fifo
(** Eviction policy: [Clock_hand] (default) is the CLOCK second-chance
    approximation of LRU that AIFM's hotness tracking amounts to; [Fifo]
    ignores recency entirely (an ablation of the evacuator's hotness
    bits). *)

val create :
  ?policy:policy ->
  ?telemetry:Telemetry.Sink.t ->
  ?addr_of_id:(int -> int) ->
  Cost_model.t ->
  Clock.t ->
  net:Net.t ->
  object_size:int ->
  local_budget:int ->
  t
(** [object_size] must be a power of two between 16 and 65536 bytes.
    [local_budget] is in bytes. [telemetry] (default
    {!Telemetry.Sink.nop}) receives fetch/writeback/eviction events; it
    never charges simulated cycles. [addr_of_id] maps an object id to
    its main-store base address — the replication key the pool passes to
    {!Memsim.Net.fetch_object}/{!Memsim.Net.writeback_object}; defaults
    to [id * object_size]. *)

val telemetry : t -> Telemetry.Sink.t
val set_telemetry : t -> Telemetry.Sink.t -> unit

val object_size : t -> int
val local_budget : t -> int
val local_used : t -> int

exception Out_of_local_memory
(** Raised when the budget is exceeded and every local object is pinned
    — with the remote reachable. While the circuit breaker is open
    (remote outage) the evacuator instead degrades: dirty objects cannot
    be written back, so it sheds clean objects only and, failing that,
    defers eviction entirely (counter [aifm.evictions_deferred]) letting
    local memory absorb the overshoot until recovery. *)

val materialize : t -> int -> unit
(** [materialize t id] creates the object directly in local memory (fresh
    allocation: no network fetch), dirty, subject to eviction. No-op if
    the object already exists and is local. Most callers instead rely on
    [ensure_local]'s lazy first-touch path. *)

val is_local : t -> int -> bool

val ensure_local : t -> int -> unit
(** Demand-localize. First touch of an object with no remote copy
    materializes it locally at a small fixed cost (the analogue of an
    anonymous first-touch fault); an object whose data was evicted pays
    the network fetch (or the residual prefetched cost if a prefetch
    already covered it). Updates the budget, evicting as needed, and
    marks the object hot. *)

val mark_dirty : t -> int -> unit
(** Record that a local object diverged from the remote copy; eviction of
    a dirty object pays a writeback. *)

val mark_prefetched : t -> int -> unit
(** Note an in-flight asynchronous prefetch for a remote object; the next
    [ensure_local] charges only the overlapped cost. No-op when local. *)

val pin : t -> int -> unit
val unpin : t -> int -> unit
val pinned : t -> int -> bool

val evict_one : t -> bool
(** Force one eviction round (used by tests); [false] if nothing evictable. *)

val discard : t -> int -> unit
(** Drop an object entirely (freed memory): releases its local budget if
    local and forgets any remote copy, with no writeback — the backing
    region is dead. No-op on pinned objects (a freed-while-in-scope
    object would be a use-after-free in the program, which the simulator
    surfaces by keeping the pin). *)

val local_count : t -> int
(** Number of objects currently local. *)

(** Counters on the shared clock: [aifm.demand_fetches],
    [aifm.evictions], [aifm.writebacks], [aifm.materialized],
    [aifm.evictions_deferred] (fault path only). *)
