(* Smart-pointer dereference overhead: AIFM pays an indirection and scope
   bookkeeping on every data-structure access even when the object is
   local (the paper notes this in Section 4.1). *)
let deref_cost = 25

type ctx = {
  cost : Cost_model.t;
  clock : Clock.t;
  store : Memstore.t;
  pool : Pool.t;
  alloc : Region_alloc.t;
  prefetcher : Prefetcher.t;
}

(* Remotable heap addresses start high so they never collide with the
   interpreter's stack/global segments when a context shares a store. *)
let heap_base = 1 lsl 44

let create_ctx ?(backend = Net.Tcp) ?(faults = Faults.disabled) ?cluster cost
    clock store ~object_size ~local_budget =
  let net = Net.create ~faults ?cluster cost clock backend in
  (* Degrade to block-with-yield: when the smart-pointer deref runs
     inside a Shenango task, transport stalls release the core. *)
  Net.set_stall_handler net (fun ~cycles ->
      ignore (Shenango.Sched.try_block cycles));
  let pool =
    Pool.create
      ~addr_of_id:(fun id -> heap_base + (id * object_size))
      cost clock ~net ~object_size ~local_budget
  in
  let alloc = Region_alloc.create ~base:heap_base in
  let prefetcher = Prefetcher.create pool () in
  { cost; clock; store; pool; alloc; prefetcher }

let ctx_pool ctx = ctx.pool
let ctx_clock ctx = ctx.clock

let object_id ctx addr = (addr - heap_base) / Pool.object_size ctx.pool

(* Localize and pin the object containing [addr .. addr+size), run [f],
   unpin. The common case (object already local) costs one deref. *)
let with_access ctx addr size f =
  Clock.tick ctx.clock deref_cost;
  let id = object_id ctx addr in
  let id_last = object_id ctx (addr + size - 1) in
  Pool.ensure_local ctx.pool id;
  if id_last <> id then Pool.ensure_local ctx.pool id_last;
  Scope.with_object ctx.pool id f

module Array = struct
  type t = { ctx : ctx; base : int; elem_size : int; len : int }

  let create ctx ~elem_size ~len =
    if elem_size <= 0 || len < 0 then invalid_arg "Remote.Array.create";
    (* Objects materialize lazily on first access; fresh memory never
       crosses the network. *)
    let base = Region_alloc.alloc ctx.alloc (max 1 (elem_size * len)) in
    { ctx; base; elem_size; len }

  let len t = t.len
  let elem_size t = t.elem_size

  let addr t i =
    if i < 0 || i >= t.len then invalid_arg "Remote.Array: index";
    t.base + (i * t.elem_size)

  let get t i =
    let a = addr t i in
    let size = min t.elem_size 8 in
    with_access t.ctx a size (fun () ->
        Clock.tick t.ctx.clock t.ctx.cost.Cost_model.local_access;
        Memstore.load t.ctx.store ~addr:a ~size)

  let set t i v =
    let a = addr t i in
    let size = min t.elem_size 8 in
    with_access t.ctx a size (fun () ->
        Clock.tick t.ctx.clock t.ctx.cost.Cost_model.local_access;
        Pool.mark_dirty t.ctx.pool (object_id t.ctx a);
        Memstore.store t.ctx.store ~addr:a ~size v)

  let get_float t i =
    if t.elem_size < 8 then invalid_arg "Remote.Array.get_float";
    let a = addr t i in
    with_access t.ctx a 8 (fun () ->
        Clock.tick t.ctx.clock t.ctx.cost.Cost_model.local_access;
        Memstore.load_float t.ctx.store ~addr:a)

  let set_float t i x =
    if t.elem_size < 8 then invalid_arg "Remote.Array.set_float";
    let a = addr t i in
    with_access t.ctx a 8 (fun () ->
        Clock.tick t.ctx.clock t.ctx.cost.Cost_model.local_access;
        Pool.mark_dirty t.ctx.pool (object_id t.ctx a);
        Memstore.store_float t.ctx.store ~addr:a x)

  (* AIFM's iterator classes keep a raw pointer inside the current object
     and only pay the smart-pointer dereference when crossing an object
     boundary, with the stride prefetcher running ahead — the same cost
     structure TrackFM's loop chunking recovers automatically. *)
  let iter_seq_range ~is_float t ~lo ~hi f =
    let pool = t.ctx.pool in
    let clock = t.ctx.clock in
    let cur = ref (-1) in
    for i = lo to hi - 1 do
      let a = addr t i in
      let id = object_id t.ctx a in
      if id <> !cur then begin
        (match !cur with -1 -> () | old -> Pool.unpin pool old);
        Clock.tick clock deref_cost;
        Prefetcher.access t.ctx.prefetcher id;
        Pool.ensure_local pool id;
        Pool.pin pool id;
        cur := id
      end
      else Clock.tick clock 3 (* in-object boundary check *);
      Clock.tick clock t.ctx.cost.Cost_model.local_access;
      let size = min t.elem_size 8 in
      if is_float then f i (`F (Memstore.load_float t.ctx.store ~addr:a))
      else f i (`I (Memstore.load t.ctx.store ~addr:a ~size))
    done;
    match !cur with -1 -> () | old -> Pool.unpin pool old

  let iter_prefetched t f =
    iter_seq_range ~is_float:false t ~lo:0 ~hi:t.len (fun i v ->
        match v with `I n -> f i n | `F _ -> assert false)

  let iter_prefetched_float t f =
    if t.elem_size < 8 then invalid_arg "Remote.Array.iter_prefetched_float";
    iter_seq_range ~is_float:true t ~lo:0 ~hi:t.len (fun i v ->
        match v with `F x -> f i x | `I _ -> assert false)

  let fold_range_float t ~lo ~hi ~init f =
    if t.elem_size < 8 then invalid_arg "Remote.Array.fold_range_float";
    if lo < 0 || hi > t.len || lo > hi then
      invalid_arg "Remote.Array.fold_range_float: range";
    let acc = ref init in
    iter_seq_range ~is_float:true t ~lo ~hi (fun _ v ->
        match v with `F x -> acc := f !acc x | `I _ -> assert false);
    !acc
end

module Hashmap = struct
  type t = {
    slots : Array.t; (* pairs: [key+1; value] per slot, 16 bytes *)
    mutable count : int;
    mask : int;
  }

  let round_pow2 n =
    let c = ref 1 in
    while !c < n do
      c := !c * 2
    done;
    !c

  let create ctx ~slots =
    let n = round_pow2 (max 8 slots) in
    { slots = Array.create ctx ~elem_size:8 ~len:(2 * n); count = 0; mask = n - 1 }

  (* Fibonacci hashing; good spread for sequential keys. *)
  let hash t k = k * 0x2545F4914F6CDD1D land max_int land t.mask

  let probe t key =
    let rec go i steps =
      if steps > t.mask then None
      else
        let stored = Array.get t.slots (2 * i) in
        if stored = 0 then Some (i, false)
        else if stored = key + 1 then Some (i, true)
        else go ((i + 1) land t.mask) (steps + 1)
    in
    go (hash t key) 0

  let put t ~key ~value =
    if key < 0 || value < 0 then invalid_arg "Remote.Hashmap.put";
    match probe t key with
    | Some (i, present) ->
        if not present then begin
          if t.count >= t.mask then failwith "Remote.Hashmap: full";
          Array.set t.slots (2 * i) (key + 1);
          t.count <- t.count + 1
        end;
        Array.set t.slots ((2 * i) + 1) value
    | None -> failwith "Remote.Hashmap: full"

  let get t ~key =
    match probe t key with
    | Some (i, true) -> Some (Array.get t.slots ((2 * i) + 1))
    | Some (_, false) | None -> None

  let mem t ~key = match get t ~key with Some _ -> true | None -> false
  let size t = t.count
end

module Vector = struct
  type t = {
    ctx : ctx;
    elem_size : int;
    mutable data : Array.t;
    mutable len : int;
  }

  let create ctx ~elem_size =
    { ctx; elem_size; data = Array.create ctx ~elem_size ~len:16; len = 0 }

  let length t = t.len
  let capacity t = Array.len t.data

  let grow t =
    let bigger = Array.create t.ctx ~elem_size:t.elem_size ~len:(2 * Array.len t.data) in
    for i = 0 to t.len - 1 do
      Array.set bigger i (Array.get t.data i)
    done;
    (* The old region is dead; a real implementation frees it back to the
       region allocator. *)
    Region_alloc.free t.ctx.alloc t.data.Array.base;
    t.data <- bigger

  let push t v =
    if t.len = Array.len t.data then grow t;
    Array.set t.data t.len v;
    t.len <- t.len + 1

  let check t i = if i < 0 || i >= t.len then invalid_arg "Remote.Vector: index"

  let get t i =
    check t i;
    Array.get t.data i

  let set t i v =
    check t i;
    Array.set t.data i v

  let iter_prefetched t f =
    (* Iterate only the live prefix. *)
    let remaining = t.len in
    if remaining > 0 then begin
      let live = { t.data with Array.len = remaining } in
      Array.iter_prefetched live f
    end
end

module List = struct
  (* Node layout: [value (8 B); next pointer (8 B)]; next = 0 terminates. *)
  type t = { ctx : ctx; mutable head : int; mutable count : int }

  let node_bytes = 16

  let create ctx = { ctx; head = 0; count = 0 }

  let push_front t v =
    let node = Region_alloc.alloc t.ctx.alloc node_bytes in
    with_access t.ctx node node_bytes (fun () ->
        Clock.tick t.ctx.clock (2 * t.ctx.cost.Cost_model.local_access);
        Pool.mark_dirty t.ctx.pool (object_id t.ctx node);
        Memstore.store t.ctx.store ~addr:node ~size:8 v;
        Memstore.store t.ctx.store ~addr:(node + 8) ~size:8 t.head);
    t.head <- node;
    t.count <- t.count + 1

  let length t = t.count

  let fold t ~init f =
    let acc = ref init in
    let cur = ref t.head in
    while !cur <> 0 do
      let node = !cur in
      with_access t.ctx node node_bytes (fun () ->
          Clock.tick t.ctx.clock (2 * t.ctx.cost.Cost_model.local_access);
          acc := f !acc (Memstore.load t.ctx.store ~addr:node ~size:8);
          cur := Memstore.load t.ctx.store ~addr:(node + 8) ~size:8)
    done;
    !acc

  let nth t k =
    if k < 0 || k >= t.count then None
    else begin
      let cur = ref t.head in
      for _ = 1 to k do
        with_access t.ctx !cur node_bytes (fun () ->
            Clock.tick t.ctx.clock t.ctx.cost.Cost_model.local_access;
            cur := Memstore.load t.ctx.store ~addr:(!cur + 8) ~size:8)
      done;
      let node = !cur in
      Some
        (with_access t.ctx node node_bytes (fun () ->
             Clock.tick t.ctx.clock t.ctx.cost.Cost_model.local_access;
             Memstore.load t.ctx.store ~addr:node ~size:8))
    end
end

module Queue = struct
  type t = {
    ring : Array.t;
    capacity : int;
    mutable head : int; (* next pop *)
    mutable tail : int; (* next push *)
    mutable count : int;
  }

  let create ctx ~capacity =
    if capacity <= 0 then invalid_arg "Remote.Queue.create";
    {
      ring = Array.create ctx ~elem_size:8 ~len:capacity;
      capacity;
      head = 0;
      tail = 0;
      count = 0;
    }

  let length t = t.count
  let is_full t = t.count = t.capacity

  let push t v =
    if is_full t then false
    else begin
      Array.set t.ring t.tail v;
      t.tail <- (t.tail + 1) mod t.capacity;
      t.count <- t.count + 1;
      true
    end

  let pop t =
    if t.count = 0 then None
    else begin
      let v = Array.get t.ring t.head in
      t.head <- (t.head + 1) mod t.capacity;
      t.count <- t.count - 1;
      Some v
    end
end
