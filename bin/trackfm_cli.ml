(* trackfm_cli: compile-and-run any bundled workload under a chosen
   far-memory system and print its statistics.

   Examples:
     dune exec bin/trackfm_cli.exe -- run -w stream-sum -s trackfm -m 25
     dune exec bin/trackfm_cli.exe -- run -w memcached -s fastswap -m 10
     dune exec bin/trackfm_cli.exe -- list *)

open Workloads
open Cmdliner

type workload = {
  wname : string;
  describe : string;
  build : unit -> Ir.modul;
  blobs : (int * Bytes.t) list;
  working_set : int;
  expected : int;
  op_classes : (int * string) list;
      (* span operation classes the program marks with !op_begin/!op_end *)
}

let workloads () =
  let stream kernel =
    let n = 200_000 in
    {
      wname = "stream-" ^ Stream.kernel_name kernel;
      describe = "STREAM " ^ Stream.kernel_name kernel ^ " kernel";
      build = (fun () -> Stream.build ~n ~kernel ());
      blobs = [];
      working_set = Stream.working_set_bytes ~n ~kernel ();
      expected = Stream.checksum ~n ~kernel ();
      op_classes = [];
    }
  in
  let kme =
    let p = Kmeans.default_params ~n:15_000 in
    {
      wname = "kmeans";
      describe = "k-means clustering (dimension-major)";
      build = (fun () -> Kmeans.build p ());
      blobs = [];
      working_set = Kmeans.working_set_bytes p;
      expected = Kmeans.checksum p;
      op_classes = Kmeans.op_classes;
    }
  in
  let hm =
    let p = Hashmap.default_params ~keys:80_000 ~lookups:100_000 in
    {
      wname = "hashmap";
      describe = "Zipfian hashmap lookups";
      build = (fun () -> Hashmap.build p ());
      blobs = [ (0, Hashmap.trace_blob p) ];
      working_set = Hashmap.working_set_bytes p;
      expected = Hashmap.checksum p;
      op_classes = Hashmap.op_classes;
    }
  in
  let mc =
    let p = Memcached.default_params ~keys:80_000 ~gets:50_000 ~skew:1.1 in
    {
      wname = "memcached";
      describe = "memcached-style KV store, Zipf 1.1";
      build = (fun () -> Memcached.build p ());
      blobs = [ (0, Memcached.trace_blob p) ];
      working_set = Memcached.working_set_bytes p;
      expected = Memcached.checksum p;
      op_classes = Memcached.op_classes;
    }
  in
  let an =
    let p = Analytics.default_params ~rows:150_000 in
    {
      wname = "analytics";
      describe = "NYC-taxi-style dataframe queries";
      build = (fun () -> Analytics.build p ());
      blobs = [];
      working_set = Analytics.working_set_bytes p;
      expected = Analytics.checksum p;
      op_classes = [];
    }
  in
  let chase =
    let nodes = 60_000 in
    {
      wname = "pointer-chase";
      describe = "permuted linked-list traversal";
      build = (fun () -> Chase.build ~nodes ());
      blobs = [];
      working_set = Chase.working_set_bytes ~nodes;
      expected = Chase.checksum ~nodes;
      op_classes = [];
    }
  in
  let ll =
    let nodes = 40_000 and tnodes = 16_000 in
    {
      wname = "llist";
      describe = "helper-hidden list+tree traversal (shape analysis)";
      build = (fun () -> Llist.build ~nodes ~tnodes ());
      blobs = [];
      working_set = Llist.working_set_bytes ~nodes ~tnodes;
      expected = Llist.checksum ~nodes ~tnodes;
      op_classes = [];
    }
  in
  let nas kernel =
    let p = { Nas.kernel; scale = 1 } in
    {
      wname = "nas-" ^ Nas.kernel_name kernel;
      describe =
        "NAS " ^ String.uppercase_ascii (Nas.kernel_name kernel) ^ " kernel";
      build = (fun () -> Nas.build p ());
      blobs = [];
      working_set = Nas.working_set_bytes p;
      expected = Nas.checksum p;
      op_classes = [];
    }
  in
  List.map stream [ Stream.Sum; Stream.Copy; Stream.Scale; Stream.Triad ]
  @ [ kme; hm; mc; an; chase; ll ]
  @ List.map nas Nas.all_kernels

let find_workload name =
  match List.find_opt (fun w -> w.wname = name) (workloads ()) with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %s; try: %s" name
           (String.concat ", " (List.map (fun w -> w.wname) (workloads ()))))

let print_outcome w (o : Driver.outcome) =
  Printf.printf "checksum: %d (%s)\n" o.Driver.ret
    (if o.Driver.ret = w.expected then "correct" else "WRONG!");
  Printf.printf "cycles:   %s (%.2f ms at 2.4 GHz)\n"
    (Tfm_util.Units.cycles_to_string o.Driver.cycles)
    (float_of_int o.Driver.cycles /. 2.4e6);
  Printf.printf "instrs:   %d\n" o.Driver.instrs;
  let counters = Clock.counters o.Driver.clock in
  if counters <> [] then begin
    Printf.printf "counters:\n";
    List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v) counters
  end

let chunk_mode_of = function "off" -> `Off | "all" -> `All | _ -> `Gated

let route_of = function
  | "off" -> Ok `Off
  | "static" -> Ok `Static
  | "profiled" -> Ok `Profiled
  | s -> Error (Printf.sprintf "unknown route mode %s (off|static|profiled)" s)

let build_of w o1 =
  if o1 then fun () ->
    let m = w.build () in
    ignore (Tfm_opt.O1.run m);
    m
  else w.build

(* One workload execution under a named system, returning the outcome and
   (for trackfm) the compile report. The telemetry factory is applied to
   the run's fresh clock inside the driver. [faults] is the injector for
   this run (fresh per run: its random stream is stateful). *)
let exec_system ?(engine = Engine.Interp) ?(route = `Off)
    ?(route_hotspots = []) ?(shapes = true) ?shadow w system ~budget
    ~object_size ~chunk_mode ~prefetch ~summaries ~faults ~replicas ~ack
    ~telemetry build =
  match system with
  | "local" ->
      Ok (Driver.run_local ~engine ~blobs:w.blobs ~telemetry build, None)
  | "fastswap" ->
      Ok
        ( Driver.run_fastswap ~engine ~blobs:w.blobs ~faults ~replicas ~ack
            ~telemetry ~local_budget:budget build,
          None )
  | "trackfm" ->
      let opts =
        {
          Driver.object_size;
          local_budget = budget;
          chunk_mode;
          prefetch;
          use_state_table = true;
          profile_gate = true;
          elide_guards = true;
          use_summaries = summaries;
          use_shapes = shapes;
          route;
          route_hotspots;
          size_classes = [];
          faults;
          replicas;
          ack;
        }
      in
      let o, report =
        Driver.run_trackfm ~engine ~blobs:w.blobs ~telemetry ?shadow build
          opts
      in
      Ok (o, Some report)
  | other ->
      Error (Printf.sprintf "unknown system %s (local|trackfm|fastswap)" other)

(* Profiled routing's evidence: a fault-free pre-run with routing off and
   a recording sink; every hotspot whose slow-path guards outnumber its
   fast-path hits is handed to the route pass as upgrade evidence. The
   pre-run uses the same deterministic build, so (function, call id) keys
   line up with the profiled run's guards. *)
let profiled_hotspots ~engine w ~budget ~object_size ~chunk_mode ~prefetch
    ~summaries build =
  let sink = ref Telemetry.Sink.nop in
  let telemetry clock =
    let s =
      Telemetry.Sink.recording ~trace:false ~series_interval:0 clock
    in
    sink := s;
    s
  in
  match
    exec_system ~engine w "trackfm" ~budget ~object_size ~chunk_mode ~prefetch
      ~summaries ~faults:Faults.disabled ~replicas:1 ~ack:1 ~telemetry build
  with
  | Error _ | (exception _) -> []
  | Ok _ -> (
      match Telemetry.Sink.recorder !sink with
      | None -> []
      | Some r ->
          List.filter_map
            (fun ((k : Telemetry.Site.key), (s : Telemetry.Site.stat)) ->
              if k.Telemetry.Site.instr >= 0 && s.Telemetry.Site.slow > s.Telemetry.Site.fast
              then Some (k.Telemetry.Site.func, k.Telemetry.Site.instr)
              else None)
            (Telemetry.Site.rows r.Telemetry.Sink.sites)
          |> List.sort compare)

let print_compile_report = function
  | None -> ()
  | Some report ->
      let e = report.Trackfm.Pipeline.elision in
      Printf.printf
        "compile: %d guards (%d elided, %d hoisted, %d upgraded), %d chunk \
         sites, growth %.2fx, %.1f ms\n"
        (report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
        + report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores)
        (Trackfm.Elide_pass.total_elided e)
        e.Trackfm.Elide_pass.hoisted e.Trackfm.Elide_pass.upgraded
        report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.chunk_sites
        (Trackfm.Pipeline.code_growth report)
        (report.Trackfm.Pipeline.compile_time_s *. 1e3);
      let r = report.Trackfm.Pipeline.routing in
      if r.Trackfm.Route_pass.routed > 0 || r.Trackfm.Route_pass.kept_pinned > 0
         || r.Trackfm.Route_pass.kept_covered > 0
      then
        Printf.printf
          "routing: %d site(s) moved to the page path (%d profile-upgraded; \
           chasing sites kept: %d pinned, %d covered elsewhere)\n"
          r.Trackfm.Route_pass.routed r.Trackfm.Route_pass.upgraded
          r.Trackfm.Route_pass.kept_pinned r.Trackfm.Route_pass.kept_covered;
      print_newline ()

(* -- fault plumbing -- *)

(* A deterministic record of one run: inputs (workload, system, fault
   spec, seed) and outputs (checksum, cycles, instrs, every clock
   counter, sorted by name). The CI fault matrix diffs this file against
   checked-in goldens — any nondeterminism or counter drift shows up as a
   byte difference. *)
let write_counters_json file ~workload ~system ~fault_cfg ~fault_seed ~replicas
    ~ack (o : Driver.outcome) =
  let open Telemetry.Json in
  let counters =
    List.sort
      (fun (a, _) (b, _) -> compare (a : string) b)
      (Clock.counters o.Driver.clock)
  in
  let j =
    Obj
      [
        ("workload", String workload);
        ("system", String system);
        ("faults", String (Faults.to_string fault_cfg));
        ("fault_seed", Int fault_seed);
        ("replicas", Int replicas);
        ("ack", Int ack);
        ("checksum", Int o.Driver.ret);
        ("cycles", Int o.Driver.cycles);
        ("instrs", Int o.Driver.instrs);
        ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) counters));
      ]
  in
  let oc = open_out file in
  to_channel oc j;
  output_char oc '\n';
  close_out oc

(* -- telemetry plumbing -- *)

(* The drivers create their clocks internally, so the sink is captured
   from inside the factory for post-run reporting. [flight] arms the
   flight recorder at sink creation so triggers fired mid-run (the first
   retry, a breaker opening, a node crash) dump immediately. *)
let capture_sink ~want_trace ~sample_interval ?(spans = false)
    ?(op_classes = []) ?flight () =
  let sink = ref Telemetry.Sink.nop in
  let factory clock =
    let s =
      Telemetry.Sink.recording ~trace:want_trace
        ~series_interval:sample_interval ~spans ~op_classes clock
    in
    Option.iter
      (fun (path, meta) -> Telemetry.Sink.set_flight_recorder s ~path ~meta)
      flight;
    sink := s;
    s
  in
  (sink, factory)

(* Run identity carried into attribution and flight-recorder files, so a
   dump names the configuration that produced it. *)
let run_meta ~workload ~system ~fault_cfg ~fault_seed =
  let open Telemetry.Json in
  [
    ("workload", String workload);
    ("system", String system);
    ("faults", String (Faults.to_string fault_cfg));
    ("fault_seed", Int fault_seed);
  ]

let write_trace_file file (r : Telemetry.Sink.recorder) =
  match r.Telemetry.Sink.trace with
  | None -> ()
  | Some tr ->
      let oc = open_out file in
      Telemetry.Trace.to_channel oc tr;
      close_out oc;
      Printf.printf "trace:    %s (%d events%s; open in chrome://tracing)\n"
        file (Telemetry.Trace.length tr)
        (match Telemetry.Trace.dropped tr with
        | 0 -> ""
        | d -> Printf.sprintf ", %d dropped" d)

let write_metrics_file file (r : Telemetry.Sink.recorder) =
  match r.Telemetry.Sink.series with
  | None ->
      Printf.eprintf
        "warning: --metrics %s requested but counter sampling is disabled \
         (--sample-interval <= 0); no CSV written\n"
        file
  | Some s ->
      let oc = open_out file in
      Telemetry.Series.to_channel oc s;
      close_out oc;
      Printf.printf "metrics:  %s (%d samples, every %s)\n" file
        (Telemetry.Series.length s)
        (Tfm_util.Units.cycles_to_string (Telemetry.Series.interval s))

(* Returns an exit code so an unwritable output path reads as a clean
   file error, not an uncaught exception (the run itself already
   printed). *)
let export_telemetry sink trace_file metrics_file =
  Telemetry.Sink.final_sample sink;
  match Telemetry.Sink.recorder sink with
  | None -> 0
  | Some r -> (
      try
        Option.iter (fun f -> write_trace_file f r) trace_file;
        Option.iter (fun f -> write_metrics_file f r) metrics_file;
        0
      with Sys_error msg ->
        Printf.eprintf "cannot write telemetry output: %s\n" msg;
        1)

(* The sums-to-wall-clock invariant, asserted wherever spans are
   reported or exported: a violation is a tracing bug, never silent. *)
let assert_span_invariant sink =
  match Telemetry.Sink.spans sink with
  | None -> 0
  | Some sp ->
      if Telemetry.Span.violations sp = 0 then 0
      else begin
        Printf.eprintf
          "span invariant VIOLATED (%d): %s — attribution does not sum to \
           wall clock\n"
          (Telemetry.Span.violations sp)
          (Telemetry.Span.violation_note sp);
        1
      end

let export_attribution sink file ~meta =
  match file with
  | None -> 0
  | Some f -> (
      match Telemetry.Sink.attribution_json sink ~meta with
      | None -> 0
      | Some j -> (
          try
            let oc = open_out f in
            Telemetry.Json.to_channel oc j;
            output_char oc '\n';
            close_out oc;
            Printf.printf "attribution: %s (%d epochs)\n" f
              (Telemetry.Sink.epoch_count sink);
            0
          with Sys_error msg ->
            Printf.eprintf "cannot write attribution JSON: %s\n" msg;
            1))

(* The guard-coverage checker raises before the run's sink exists (the
   pipeline runs at compile time), so an armed flight recorder gets a
   minimal dump written here instead of via a sink trigger. *)
let write_minimal_flight file ~meta ~reason ~details =
  let open Telemetry.Json in
  let j =
    Obj
      (meta
      @ [
          ("kind", String "trackfm-flight-recorder");
          ("version", Int 1);
          ("reason", String reason);
          ("at", Int 0);
          ("details", List (List.map (fun s -> String s) details));
          ("spans", List []);
          ("events", List []);
        ])
  in
  try
    let oc = open_out file in
    to_channel oc j;
    output_char oc '\n';
    close_out oc;
    Printf.printf "flight recorder: dumped to %s (%s)\n" file reason
  with Sys_error msg ->
    Printf.eprintf "cannot write flight-recorder dump: %s\n" msg

let report_flight_dump sink =
  Option.iter
    (fun p -> Printf.printf "flight recorder: dumped to %s\n" p)
    (Telemetry.Sink.flight_dumped sink)

(* [--engine] parsing shared by every executing subcommand: unknown
   names are a clean one-line error, not an exception. *)
let with_engine engine_name k =
  match Engine.of_string engine_name with
  | Some engine -> k engine
  | None ->
      Printf.eprintf "unknown engine %s (interp|compiled)\n" engine_name;
      1

let run_cmd workload_name system engine_name local_pct object_size chunk
    route_name prefetch summaries shapes o1 fault_spec fault_seed replicas ack
    counters_json trace_file metrics_file sample_interval attribution_file
    flight_file =
  with_engine engine_name @@ fun engine ->
  match
    (find_workload workload_name, Faults.parse fault_spec, route_of route_name)
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      prerr_endline e;
      1
  | Ok w, Ok fault_cfg, Ok route when replicas >= 1 && ack >= 1 && ack <= replicas
    -> (
      let faults = Faults.create ~seed:fault_seed fault_cfg in
      let budget = max (16 * object_size) (w.working_set * local_pct / 100) in
      Printf.printf
        "workload %s (%s), working set %s, local budget %s (%d%%), system %s\n"
        w.wname w.describe
        (Tfm_util.Units.bytes_to_string w.working_set)
        (Tfm_util.Units.bytes_to_string budget)
        local_pct system;
      if route <> `Off then
        Printf.printf "hybrid routing %s\n"
          (Trackfm.Route_pass.mode_to_string route);
      if Faults.enabled faults then
        Printf.printf "faults %s, seed %d\n" (Faults.to_string fault_cfg)
          fault_seed;
      if replicas > 1 then
        Printf.printf "replicas %d, ack %d\n" replicas ack;
      if engine <> Engine.Interp then
        Printf.printf "engine %s\n" (Engine.to_string engine);
      print_newline ();
      let want_spans = attribution_file <> None || flight_file <> None in
      let meta = run_meta ~workload:w.wname ~system ~fault_cfg ~fault_seed in
      let sink, telemetry =
        if trace_file = None && metrics_file = None && not want_spans then
          (ref Telemetry.Sink.nop, Driver.no_telemetry)
        else
          capture_sink ~want_trace:(trace_file <> None) ~sample_interval
            ~spans:want_spans ~op_classes:w.op_classes
            ?flight:(Option.map (fun f -> (f, meta)) flight_file)
            ()
      in
      let route_hotspots =
        if route = `Profiled && system = "trackfm" then
          profiled_hotspots ~engine w ~budget ~object_size
            ~chunk_mode:(chunk_mode_of chunk) ~prefetch ~summaries
            (build_of w o1)
        else []
      in
      match
        exec_system ~engine ~route ~route_hotspots ~shapes w system ~budget
          ~object_size ~chunk_mode:(chunk_mode_of chunk) ~prefetch ~summaries
          ~faults ~replicas ~ack ~telemetry (build_of w o1)
      with
      | exception Tfm_checker.Coverage.Unsound errs ->
          Printf.eprintf "checker: UNSOUND transform (%d violation(s)):\n"
            (List.length errs);
          List.iter (fun e -> Printf.eprintf "  %s\n" e) errs;
          Option.iter
            (fun f ->
              write_minimal_flight f ~meta ~reason:"checker-unsound"
                ~details:errs)
            flight_file;
          1
      | Error e ->
          prerr_endline e;
          1
      | Ok (o, report) -> (
          print_compile_report report;
          print_outcome w o;
          match
            Option.iter
              (fun f ->
                write_counters_json f ~workload:w.wname ~system ~fault_cfg
                  ~fault_seed ~replicas ~ack o)
              counters_json
          with
          | () ->
              let rc_tel = export_telemetry !sink trace_file metrics_file in
              let rc_attr = export_attribution !sink attribution_file ~meta in
              let rc_inv =
                if want_spans then assert_span_invariant !sink else 0
              in
              report_flight_dump !sink;
              max rc_tel (max rc_attr rc_inv)
          | exception Sys_error msg ->
              Printf.eprintf "cannot write counters JSON: %s\n" msg;
              1))
  | Ok _, Ok _, Ok _ ->
      Printf.eprintf "bad replication: need 1 <= ack (%d) <= replicas (%d)\n"
        ack replicas;
      1

(* -- report: run with a recording sink, print the hotspot table -- *)

let print_hotspots ?routing (o : Driver.outcome) (r : Telemetry.Sink.recorder)
    =
  let open Telemetry in
  let rows = Site.rows r.Sink.sites in
  (* The class column comes from the route pass's classification table;
     telemetry keys a row by the protecting call, which [class_of_call]
     resolves to the adjacent access. Allocation-site rows carry no
     access class, but the shape analysis may have resolved what
     structure the allocation anchors — shown as "alloc:<kind>". "-" =
     no routing report (routing off, or a non-trackfm system) or a site
     with no private call (chunk protocol, synthetic sites). *)
  let class_of (k : Site.key) =
    match routing with
    | None -> "-"
    | Some rep -> (
        match
          Trackfm.Route_pass.class_of_call rep ~func:k.Site.func
            ~instr:k.Site.instr
        with
        | Some c -> Tfm_analysis.Access_pattern.cls_to_string c
        | None -> (
            match
              Trackfm.Route_pass.shape_of_alloc rep ~func:k.Site.func
                ~instr:k.Site.instr
            with
            | Some kind -> "alloc:" ^ kind
            | None -> "-"))
  in
  if rows = [] then
    print_endline
      "no guard activity recorded in the measured region (local system, or \
       nothing survived !bench_begin)"
  else begin
    let t =
      Tfm_util.Table.create ~title:"guard-site hotspots (measured region)"
        ~columns:
          [
            "site"; "class"; "fast"; "slow"; "locality"; "custody"; "paged";
            "bytes in"; "bytes out"; "guard cyc";
          ]
    in
    let limit = 20 in
    List.iteri
      (fun i (k, s) ->
        if i < limit then
          Tfm_util.Table.add_rowf t
            "%s | %s | %d | %d | %d | %d | %d | %s | %s | %s"
            (Site.key_to_string k) (class_of k) s.Site.fast s.Site.slow
            s.Site.locality s.Site.custody s.Site.paged
            (Tfm_util.Units.bytes_to_string s.Site.bytes_in)
            (Tfm_util.Units.bytes_to_string s.Site.bytes_out)
            (Tfm_util.Units.cycles_to_string s.Site.guard_cycles))
      rows;
    let tot = Site.totals r.Sink.sites in
    Tfm_util.Table.add_rowf t
      "TOTAL (%d sites) | | %d | %d | %d | %d | %d | %s | %s | %s"
      (List.length rows) tot.Site.fast tot.Site.slow tot.Site.locality
      tot.Site.custody tot.Site.paged
      (Tfm_util.Units.bytes_to_string tot.Site.bytes_in)
      (Tfm_util.Units.bytes_to_string tot.Site.bytes_out)
      (Tfm_util.Units.cycles_to_string tot.Site.guard_cycles);
    Tfm_util.Table.print t;
    if List.length rows > limit then
      Printf.printf "(hottest %d of %d sites shown)\n" limit
        (List.length rows);
    print_endline "attribution cross-check (site totals vs clock counters):";
    let check name site_v counter_name =
      let cv = Driver.counter o counter_name in
      Printf.printf "  %-16s sites %10d   %-20s %10d   %s\n" name site_v
        counter_name cv
        (if site_v = cv then "OK" else "MISMATCH")
    in
    check "fast guards" tot.Site.fast "tfm.fast_guards";
    check "slow guards" tot.Site.slow "tfm.slow_guards";
    check "locality guards" tot.Site.locality "tfm.locality_guards";
    check "custody skips" tot.Site.custody "tfm.custody_skips";
    if tot.Site.paged > 0 || Driver.counter o "tfm.page_accesses" > 0 then
      check "paged accesses" tot.Site.paged "tfm.page_accesses"
  end

let print_histograms (r : Telemetry.Sink.recorder) =
  let open Telemetry in
  Printf.printf "slow-guard latency:  %s\n"
    (Histogram.summary_string ~unit_name:"cyc" r.Sink.guard_cycles);
  Printf.printf "fetch size:          %s\n"
    (Histogram.summary_string ~unit_name:"B" r.Sink.fetch_bytes);
  Printf.printf "retry backoff:       %s\n"
    (Histogram.summary_string ~unit_name:"cyc" r.Sink.retry_backoff)

let print_sparklines (r : Telemetry.Sink.recorder) =
  let open Telemetry in
  match r.Sink.series with
  | None -> ()
  | Some s ->
      let names = Series.names s in
      if names <> [] && Series.length s > 1 then begin
        Printf.printf
          "\ncounter activity over the run (per-%s deltas, %d samples):\n"
          (Tfm_util.Units.cycles_to_string (Series.interval s))
          (Series.length s);
        List.iter
          (fun name ->
            let vals = List.map snd (Series.deltas s name) in
            let peak = List.fold_left max 0.0 vals in
            if peak > 0.0 then
              Printf.printf "  %-22s %s  peak %.0f\n" name
                (Tfm_util.Ascii_plot.sparkline ~width:50 vals)
                peak)
          names
      end

let report_cmd workload_name system engine_name local_pct object_size chunk
    route_name prefetch summaries o1 fault_spec fault_seed trace_file
    metrics_file sample_interval =
  with_engine engine_name @@ fun engine ->
  match
    (find_workload workload_name, Faults.parse fault_spec, route_of route_name)
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      prerr_endline e;
      1
  | Ok w, Ok fault_cfg, Ok route -> (
      let faults = Faults.create ~seed:fault_seed fault_cfg in
      let budget = max (16 * object_size) (w.working_set * local_pct / 100) in
      Printf.printf "telemetry report: %s under %s, local budget %s (%d%%)%s%s\n\n"
        w.wname system
        (Tfm_util.Units.bytes_to_string budget)
        local_pct
        (if Faults.enabled faults then
           Printf.sprintf ", faults %s seed %d" (Faults.to_string fault_cfg)
             fault_seed
         else "")
        (if route <> `Off then
           ", routing " ^ Trackfm.Route_pass.mode_to_string route
         else "");
      let route_hotspots =
        if route = `Profiled && system = "trackfm" then
          profiled_hotspots ~engine w ~budget ~object_size
            ~chunk_mode:(chunk_mode_of chunk) ~prefetch ~summaries
            (build_of w o1)
        else []
      in
      let sink, telemetry =
        capture_sink ~want_trace:(trace_file <> None) ~sample_interval ()
      in
      match
        exec_system ~engine ~route ~route_hotspots w system ~budget
          ~object_size ~chunk_mode:(chunk_mode_of chunk) ~prefetch ~summaries
          ~faults ~replicas:1 ~ack:1 ~telemetry (build_of w o1)
      with
      | Error e ->
          prerr_endline e;
          1
      | Ok (o, report) ->
          Telemetry.Sink.final_sample !sink;
          print_compile_report report;
          print_outcome w o;
          print_newline ();
          (match Telemetry.Sink.recorder !sink with
          | None -> () (* unreachable: capture_sink always records *)
          | Some r ->
              print_hotspots
                ?routing:
                  (Option.map
                     (fun rep -> rep.Trackfm.Pipeline.routing)
                     report)
                o r;
              print_newline ();
              print_histograms r;
              print_sparklines r);
          export_telemetry !sink trace_file metrics_file)

(* -- report critical-path / report slo: span-attribution views -- *)

let cyc = Tfm_util.Units.cycles_to_string

(* Both views print from one normalized row shape, filled either from a
   live span tracker or from an attribution JSON read back with --from.
   [cq] takes a percentile in (0, 100). *)
type cp_class = {
  cname : string;
  cops : int;
  cwall_total : int;
  cwall_mean : float;
  cq : float -> int option;
  cwall_max : int;
  ccats : (string * int) list;
  cslowest : (int * int * (string * int) list) option; (* id, wall, cats *)
}

let cp_of_span sp =
  let open Telemetry in
  let cats_of arr =
    List.map (fun c -> (Span.cat_name c, arr.(Span.cat_index c))) Span.categories
  in
  let rows =
    List.map
      (fun (cls, st) ->
        let h = st.Span.wall_hist in
        {
          cname = Span.class_name sp cls;
          cops = st.Span.ops;
          cwall_total = Histogram.total h;
          cwall_mean = Histogram.mean h;
          cq = (fun p -> Histogram.percentile_opt h p);
          cwall_max = Histogram.max_value h;
          ccats = cats_of st.Span.cat_totals;
          cslowest =
            Option.map
              (fun (r : Span.record) ->
                (r.Span.id, r.Span.wall, cats_of r.Span.cats))
              st.Span.slowest;
        })
      (Span.classes sp)
  in
  ( rows,
    cats_of (Span.background sp),
    Span.violations sp,
    Span.violation_note sp )

let cp_of_json j =
  let module J = Telemetry.Json in
  let int_of v =
    match v with
    | Some (J.Int n) -> n
    | Some (J.Float f) -> int_of_float f
    | _ -> 0
  in
  let float_of v =
    match v with
    | Some (J.Float f) -> f
    | Some (J.Int n) -> float_of_int n
    | _ -> 0.0
  in
  let cats_of v =
    match v with
    | Some (J.Obj kvs) ->
        List.filter_map
          (fun (k, x) -> match x with J.Int n -> Some (k, n) | _ -> None)
          kvs
    | _ -> []
  in
  let classes = match J.member "classes" j with Some (J.List l) -> l | _ -> [] in
  let rows =
    List.map
      (fun c ->
        let wmem k = Option.bind (J.member "wall" c) (J.member k) in
        {
          cname =
            (match J.member "name" c with Some (J.String s) -> s | _ -> "?");
          cops = int_of (J.member "ops" c);
          cwall_total = int_of (wmem "total");
          cwall_mean = float_of (wmem "mean");
          cq =
            (fun p ->
              (* wall_json keys its percentiles the way the SLO grammar
                 spells them (p50 ... p999), so reuse that rendering. *)
              match wmem (Telemetry.Slo.metric_name (Telemetry.Slo.P p)) with
              | Some (J.Int n) -> Some n
              | _ -> None);
          cwall_max = int_of (wmem "max");
          ccats = cats_of (J.member "cycles" c);
          cslowest =
            (match J.member "slowest" c with
            | Some (J.Obj _ as s) ->
                Some
                  ( int_of (J.member "id" s),
                    int_of (J.member "wall" s),
                    cats_of (J.member "cycles" s) )
            | _ -> None);
        })
      classes
  in
  let inv = J.member "invariant" j in
  ( rows,
    cats_of (J.member "background" j),
    int_of (Option.bind inv (J.member "violations")),
    match Option.bind inv (J.member "note") with
    | Some (J.String s) -> s
    | _ -> "" )

let print_critical_path ~title rows ~background ~violations ~note =
  if rows = [] then begin
    print_endline
      "no operation spans recorded (the workload marks no operations with \
       !op_begin, or the measured region ran none)";
    0
  end
  else begin
    let pct part whole =
      if whole = 0 then 0.0
      else 100.0 *. float_of_int part /. float_of_int whole
    in
    let lat =
      Tfm_util.Table.create ~title:(title ^ ": per-class latency (cycles)")
        ~columns:
          [ "class"; "ops"; "mean"; "p50"; "p90"; "p99"; "p999"; "max" ]
    in
    List.iter
      (fun c ->
        let q p = match c.cq p with Some v -> cyc v | None -> "-" in
        Tfm_util.Table.add_rowf lat "%s | %d | %.0f | %s | %s | %s | %s | %s"
          c.cname c.cops c.cwall_mean (q 50.0) (q 90.0) (q 99.0) (q 99.9)
          (cyc c.cwall_max))
      rows;
    Tfm_util.Table.print lat;
    print_newline ();
    let br =
      Tfm_util.Table.create
        ~title:"critical-path decomposition (share of wall cycles)"
        ~columns:("class" :: "wall" :: Telemetry.Span.cat_names)
    in
    List.iter
      (fun c ->
        let cells =
          List.map
            (fun n ->
              let v = try List.assoc n c.ccats with Not_found -> 0 in
              Printf.sprintf "%.1f%%" (pct v c.cwall_total))
            Telemetry.Span.cat_names
        in
        Tfm_util.Table.add_rowf br "%s | %s | %s" c.cname (cyc c.cwall_total)
          (String.concat " | " cells))
      rows;
    Tfm_util.Table.print br;
    let nonzero cats =
      String.concat ", "
        (List.filter_map
           (fun (n, v) ->
             if v > 0 then Some (Printf.sprintf "%s %s" n (cyc v)) else None)
           cats)
    in
    List.iter
      (fun c ->
        match c.cslowest with
        | None -> ()
        | Some (id, wall, cats) ->
            Printf.printf "slowest %-10s op #%d: %s wall = %s\n" c.cname id
              (cyc wall) (nonzero cats))
      rows;
    if List.exists (fun (_, v) -> v > 0) background then
      Printf.printf "outside spans (setup/background): %s\n"
        (nonzero background);
    if violations = 0 then begin
      print_endline
        "invariant: per-span category cycles sum exactly to wall clock (0 \
         violations)";
      0
    end
    else begin
      Printf.printf "INVARIANT VIOLATED (%d): %s\n" violations note;
      1
    end
  end

(* Reading back an exported attribution file: every failure mode (absent,
   unreadable, not JSON, wrong document) is a clear error naming the
   path, exit 1 — never a backtrace. *)
let load_attribution path =
  match
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error msg -> Error msg
  with
  | Error msg ->
      Error (Printf.sprintf "cannot read attribution file %s: %s" path msg)
  | Ok contents -> (
      match Telemetry.Json.parse contents with
      | Error e ->
          Error (Printf.sprintf "attribution file %s is garbled: %s" path e)
      | Ok j -> (
          match Telemetry.Json.member "kind" j with
          | Some (Telemetry.Json.String "trackfm-attribution") -> Ok j
          | _ ->
              Error
                (Printf.sprintf
                   "attribution file %s is not a trackfm-attribution document \
                    (wrong or missing \"kind\"; was it written by run \
                    --attribution?)"
                   path)))

(* Shared live-run plumbing for the span-based report views. *)
let with_live_spans w ~system ~engine ~local_pct ~object_size ~chunk ~prefetch
    ~summaries ~o1 ~fault_cfg ~fault_seed k =
  let faults = Faults.create ~seed:fault_seed fault_cfg in
  let budget = max (16 * object_size) (w.working_set * local_pct / 100) in
  let sink, telemetry =
    capture_sink ~want_trace:false ~sample_interval:250_000 ~spans:true
      ~op_classes:w.op_classes ()
  in
  match
    exec_system ~engine w system ~budget ~object_size
      ~chunk_mode:(chunk_mode_of chunk) ~prefetch ~summaries ~faults
      ~replicas:1 ~ack:1 ~telemetry (build_of w o1)
  with
  | Error e ->
      prerr_endline e;
      1
  | Ok (o, _report) -> (
      Telemetry.Sink.final_sample !sink;
      if o.Driver.ret <> w.expected then
        Printf.eprintf "warning: checksum %d does not match expected %d\n"
          o.Driver.ret w.expected;
      match Telemetry.Sink.spans !sink with
      | None ->
          prerr_endline "internal error: span tracker missing";
          1
      | Some sp -> k sp)

let critical_path_cmd workload_opt system engine_name local_pct object_size
    chunk prefetch summaries o1 fault_spec fault_seed from_file =
  with_engine engine_name @@ fun engine ->
  match from_file with
  | Some path -> (
      match load_attribution path with
      | Error e ->
          prerr_endline e;
          1
      | Ok j ->
          let rows, background, violations, note = cp_of_json j in
          print_critical_path ~title:path rows ~background ~violations ~note)
  | None -> (
      match workload_opt with
      | None ->
          prerr_endline
            "report critical-path: pass -w WORKLOAD (live run) or --from FILE";
          1
      | Some name -> (
          match (find_workload name, Faults.parse fault_spec) with
          | Error e, _ | _, Error e ->
              prerr_endline e;
              1
          | Ok w, Ok fault_cfg ->
              Printf.printf
                "critical-path report: %s under %s, faults %s, seed %d\n\n"
                w.wname system (Faults.to_string fault_cfg) fault_seed;
              with_live_spans w ~system ~engine ~local_pct ~object_size ~chunk
                ~prefetch ~summaries ~o1 ~fault_cfg ~fault_seed (fun sp ->
                  let rows, background, violations, note = cp_of_span sp in
                  print_critical_path
                    ~title:(w.wname ^ " under " ^ system)
                    rows ~background ~violations ~note)))

let print_slo_outcomes outcomes =
  let open Telemetry in
  let t =
    Tfm_util.Table.create ~title:"SLO evaluation"
      ~columns:[ "class"; "metric"; "limit"; "actual"; "verdict" ]
  in
  List.iter
    (fun o ->
      Tfm_util.Table.add_rowf t "%s | %s | %s | %s | %s" o.Slo.o_cls
        (Slo.metric_name o.Slo.o_metric)
        (cyc o.Slo.o_limit)
        (match o.Slo.o_actual with Some v -> cyc v | None -> "-")
        (if o.Slo.o_pass then "PASS" else "FAIL"))
    outcomes;
  Tfm_util.Table.print t;
  if Slo.all_pass outcomes then begin
    print_endline "all SLOs met";
    0
  end
  else begin
    print_endline "SLO violations present";
    1
  end

let lookup_rows rows ~cls ~metric =
  match List.find_opt (fun r -> r.cname = cls) rows with
  | None -> None
  | Some r -> (
      match metric with
      | Telemetry.Slo.P p -> r.cq p
      | Telemetry.Slo.Mean ->
          if r.cops = 0 then None
          else Some (int_of_float (r.cwall_mean +. 0.5))
      | Telemetry.Slo.Max -> if r.cops = 0 then None else Some r.cwall_max)

(* The SLO rules come from exactly one of --slo SPEC (inline) or
   --slo-file FILE (one class:objectives spec per line, '#' comments);
   a file error names the offending line. *)
let load_slo_rules slo_spec slo_file =
  match (slo_spec, slo_file) with
  | None, None -> Error "report slo: pass --slo SPEC or --slo-file FILE"
  | Some _, Some _ ->
      Error "report slo: --slo and --slo-file are mutually exclusive"
  | Some spec, None -> (
      match Telemetry.Slo.parse spec with
      | Ok rules -> Ok (spec, rules)
      | Error e -> Error (Printf.sprintf "bad --slo spec: %s" e))
  | None, Some file -> (
      match
        try Ok (In_channel.with_open_bin file In_channel.input_lines)
        with Sys_error msg -> Error msg
      with
      | Error msg ->
          Error (Printf.sprintf "cannot read SLO file %s: %s" file msg)
      | Ok lines -> (
          match Telemetry.Slo.parse_lines lines with
          | Ok rules -> Ok (file, rules)
          | Error e -> Error (Printf.sprintf "bad SLO file %s: %s" file e)))

let slo_cmd workload_opt system engine_name local_pct object_size chunk
    prefetch summaries o1 fault_spec fault_seed from_file slo_spec slo_file =
  with_engine engine_name @@ fun engine ->
  match load_slo_rules slo_spec slo_file with
  | Error e ->
      prerr_endline e;
      1
  | Ok (spec_name, rules) -> (
      let evaluate rows violations note =
        let rc_slo =
          print_slo_outcomes
            (Telemetry.Slo.evaluate rules
               ~lookup:(fun ~cls metric -> lookup_rows rows ~cls ~metric))
        in
        if violations = 0 then rc_slo
        else begin
          Printf.printf "INVARIANT VIOLATED (%d): %s\n" violations note;
          1
        end
      in
      match from_file with
      | Some path -> (
          match load_attribution path with
          | Error e ->
              prerr_endline e;
              1
          | Ok j ->
              let rows, _, violations, note = cp_of_json j in
              evaluate rows violations note)
      | None -> (
          match workload_opt with
          | None ->
              prerr_endline
                "report slo: pass -w WORKLOAD (live run) or --from FILE";
              1
          | Some name -> (
              match (find_workload name, Faults.parse fault_spec) with
              | Error e, _ | _, Error e ->
                  prerr_endline e;
                  1
              | Ok w, Ok fault_cfg ->
                  Printf.printf "SLO report: %s under %s, spec %s\n\n" w.wname
                    system spec_name;
                  with_live_spans w ~system ~engine ~local_pct ~object_size
                    ~chunk ~prefetch ~summaries ~o1 ~fault_cfg ~fault_seed
                    (fun sp ->
                      let rows, _, violations, note = cp_of_span sp in
                      evaluate rows violations note))))

(* -- serve: the overload-robust multi-tenant serving scenario -- *)

let print_serving_result (r : Serving.result) =
  let p = r.Serving.rp in
  Printf.printf
    "backend %s, offered %.1f req/Mcyc, %d arrivals, %d connections\n"
    (Serving.backend_name p.Serving.backend)
    p.Serving.rate p.Serving.requests p.Serving.connections;
  let c = p.Serving.controls in
  Printf.printf
    "controls: admission %s, shedding %s, degradation %s (queue cap %d, \
     deadline %s)\n"
    (if c.Serving.admission then "on" else "off")
    (if c.Serving.shedding then "on" else "off")
    (if c.Serving.degradation then "on" else "off")
    c.Serving.queue_cap (cyc c.Serving.deadline);
  if Faults.enabled (Faults.create ~seed:p.Serving.fault_seed p.Serving.faults)
  then
    Printf.printf "faults %s, seed %d\n"
      (Faults.to_string p.Serving.faults)
      p.Serving.fault_seed;
  if p.Serving.replicas > 1 then
    Printf.printf "replicas %d, ack %d\n" p.Serving.replicas p.Serving.ack;
  print_newline ();
  let t =
    Tfm_util.Table.create ~title:"per-tenant outcomes"
      ~columns:
        [
          "tenant"; "offered"; "admitted"; "completed"; "good"; "degraded";
          "rejected"; "shed"; "throttled"; "p50"; "p99"; "p999";
        ]
  in
  let q h p =
    match Telemetry.Histogram.percentile_opt h p with
    | Some v -> cyc v
    | None -> "-"
  in
  List.iter
    (fun s ->
      Tfm_util.Table.add_rowf t
        "%s | %d | %d | %d | %d | %d | %d | %d | %d | %s | %s | %s"
        s.Serving.tenant.Serving.tn_name s.Serving.offered s.Serving.admitted
        s.Serving.completed s.Serving.good s.Serving.degraded
        s.Serving.rejected s.Serving.shed s.Serving.throttled
        (q s.Serving.latency 50.0) (q s.Serving.latency 99.0)
        (q s.Serving.latency 99.9))
    r.Serving.stats;
  Tfm_util.Table.print t;
  Printf.printf
    "\nduration %s, goodput %.2f good/Mcyc, fleet p99 %s, max queue %d\n"
    (cyc r.Serving.duration) r.Serving.goodput (q r.Serving.fleet 99.0)
    r.Serving.max_queue

let serving_meta (p : Serving.params) =
  let open Telemetry.Json in
  [
    ("scenario", String "serving");
    ("backend", String (Serving.backend_name p.Serving.backend));
    ("rate_per_mcyc", Float p.Serving.rate);
    ("faults", String (Faults.to_string p.Serving.faults));
    ("fault_seed", Int p.Serving.fault_seed);
    ("seed", Int p.Serving.seed);
  ]

let serve_cmd backend_name rate requests tenants keys skew value_size budget
    connections service_cycles readahead queue_cap deadline no_admission
    no_shedding no_degradation open_loop fault_spec fault_seed replicas ack
    seed serving_json attribution_file flight_file =
  match (Serving.backend_of_string backend_name, Faults.parse fault_spec) with
  | None, _ ->
      Printf.eprintf "unknown backend %s (trackfm|fastswap|aifm)\n"
        backend_name;
      1
  | _, Error e ->
      prerr_endline e;
      1
  | Some backend, Ok fault_cfg -> (
      let controls =
        if open_loop then Serving.open_loop
        else
          {
            Serving.admission = not no_admission;
            shedding = not no_shedding;
            degradation = not no_degradation;
            queue_cap;
            deadline;
          }
      in
      let p =
        {
          Serving.backend;
          tenants = Serving.default_tenants ~n:tenants ~keys ~budget
                    |> List.map (fun t -> { t with Serving.skew });
          rate;
          requests;
          service_cycles;
          value_size;
          connections;
          readahead;
          seed;
          controls;
          faults = fault_cfg;
          fault_seed;
          replicas;
          ack;
        }
      in
      let meta = serving_meta p in
      let want_spans = attribution_file <> None || flight_file <> None in
      match
        Serving.run ~spans:want_spans
          ?flight:(Option.map (fun f -> (f, meta)) flight_file)
          p
      with
      | exception Invalid_argument msg ->
          prerr_endline msg;
          1
      | r -> (
          print_serving_result r;
          let rc_attr = export_attribution r.Serving.sink attribution_file ~meta in
          let rc_inv =
            if want_spans then assert_span_invariant r.Serving.sink else 0
          in
          report_flight_dump r.Serving.sink;
          match
            Option.iter
              (fun f ->
                let oc = open_out f in
                Telemetry.Json.to_channel oc (Serving.result_json r);
                output_char oc '\n';
                close_out oc;
                Printf.printf "serving JSON: %s\n" f)
              serving_json
          with
          | () -> max rc_attr rc_inv
          | exception Sys_error msg ->
              Printf.eprintf "cannot write serving JSON: %s\n" msg;
              1))

(* -- validate: JSON schema check (CI validates exported traces) -- *)

let validate_cmd schema_file input_file =
  let read what path =
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> Ok contents
    | exception Sys_error msg ->
        Error (Printf.sprintf "cannot read %s %s: %s" what path msg)
  in
  let parse what path contents =
    match Telemetry.Json.parse contents with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "%s %s is not valid JSON: %s" what path e)
  in
  let load what path =
    Result.bind (read what path) (parse what path)
  in
  match (load "schema" schema_file, load "input" input_file) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok schema, Ok v -> (
      match Telemetry.Json.validate ~schema v with
      | Ok () ->
          Printf.printf "%s: valid against %s\n" input_file schema_file;
          0
      | Error e ->
          Printf.eprintf "%s: schema violation: %s\n" input_file e;
          1)

let sweep_cmd workload_name object_size =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      Printf.printf "sweeping %s (working set %s), object size %dB\n\n"
        w.wname
        (Tfm_util.Units.bytes_to_string w.working_set)
        object_size;
      let t =
        Tfm_util.Table.create
          ~title:"slowdown vs all-local, by local memory"
          ~columns:[ "local mem %"; "TrackFM"; "Fastswap" ]
      in
      let lo = Driver.run_local ~blobs:w.blobs w.build in
      let tfm_pts = ref [] and fs_pts = ref [] in
      List.iter
        (fun pct ->
          let budget = max (16 * 4096) (w.working_set * pct / 100) in
          let opts =
            {
              Driver.object_size;
              local_budget = budget;
              chunk_mode = `Gated;
              prefetch = true;
              use_state_table = true;
              profile_gate = true;
              elide_guards = true;
              use_summaries = true;
              use_shapes = true;
              route = `Off;
              route_hotspots = [];
              size_classes = [];
              faults = Faults.disabled;
              replicas = 1;
              ack = 1;
            }
          in
          let tfm, _ = Driver.run_trackfm ~blobs:w.blobs w.build opts in
          let fs =
            Driver.run_fastswap ~blobs:w.blobs ~local_budget:budget w.build
          in
          assert (tfm.Driver.ret = w.expected && fs.Driver.ret = w.expected);
          let sl c = float_of_int c /. float_of_int lo.Driver.cycles in
          tfm_pts := (float_of_int pct, sl tfm.Driver.cycles) :: !tfm_pts;
          fs_pts := (float_of_int pct, sl fs.Driver.cycles) :: !fs_pts;
          Tfm_util.Table.add_rowf t "%d | %.2f | %.2f" pct
            (sl tfm.Driver.cycles) (sl fs.Driver.cycles))
        [ 10; 25; 50; 75; 100 ];
      Tfm_util.Table.print t;
      Tfm_util.Ascii_plot.print ~x_label:"local mem %"
        ~title:(w.wname ^ ": slowdown vs all-local")
        [
          { Tfm_util.Ascii_plot.label = "TrackFM"; points = !tfm_pts };
          { label = "Fastswap"; points = !fs_pts };
        ];
      0

let autotune_cmd workload_name local_pct =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      let budget = max 65536 (w.working_set * local_pct / 100) in
      Printf.printf
        "autotuning object size for %s at %d%% local memory (Section 3.2's \
         exhaustive recompile-and-run search)\n\n"
        w.wname local_pct;
      let best, results =
        Driver.autotune_object_size ~blobs:w.blobs w.build ~local_budget:budget
      in
      List.iter
        (fun (osz, cycles) ->
          Printf.printf "  %5dB -> %s%s\n" osz
            (Tfm_util.Units.cycles_to_string cycles)
            (if osz = best then "   <- chosen" else ""))
        results;
      0

(* Static-analysis lint: compile every workload under each chunk mode,
   with and without the guard optimizer, and run the guard-coverage
   verifier plus the elision-witness re-check over the transformed IR.
   Compile-only (no execution, no profile run), so this is fast enough
   for a CI lint stage. Exits non-zero on any violation. *)
let check_cmd workload_filter engine_name =
  with_engine engine_name @@ fun engine ->
  let selected =
    List.filter
      (fun w ->
        match workload_filter with None -> true | Some n -> w.wname = n)
      (workloads ())
  in
  if selected = [] then begin
    Printf.eprintf "no workload matches %s\n"
      (Option.value ~default:"<all>" workload_filter);
    1
  end
  else begin
    let failures = ref 0 in
    List.iter
      (fun w ->
        List.iter
          (fun (mode_name, chunk_mode) ->
            List.iter
              (fun elide ->
                List.iter
                  (fun summaries ->
                    List.iter
                      (fun route ->
                        let m = w.build () in
                        let config =
                          {
                            Trackfm.Pipeline.object_size = 4096;
                            chunk_mode;
                            profile = None;
                            cost = Cost_model.default;
                            elide;
                            summaries;
                            shapes = true;
                            route;
                            route_hotspots = [];
                            check = false (* we report instead of raising *);
                            dump_after = None;
                          }
                        in
                        let report = Trackfm.Pipeline.run config m in
                        let e = report.Trackfm.Pipeline.elision in
                        let r = report.Trackfm.Pipeline.routing in
                        let violations =
                          Tfm_checker.Coverage.check_module ~summaries m
                        in
                        let witness_errors =
                          Tfm_checker.Coverage.check_witnesses m
                            e.Trackfm.Elide_pass.elisions
                        in
                        let routing_errors =
                          Tfm_checker.Coverage.check_routing m
                            r.Trackfm.Route_pass.routes
                        in
                        let ok =
                          violations = [] && witness_errors = []
                          && routing_errors = []
                        in
                        Printf.printf
                          "%-14s chunk=%-5s elide=%-3s summ=%-3s route=%-6s \
                           guards=%5d elided=%4d (same %d congruent %d range \
                           %d) hoisted=%d upgraded=%d widened=%d routed=%d  \
                           %s\n"
                          w.wname mode_name
                          (if elide then "on" else "off")
                          (if summaries then "on" else "off")
                          (Trackfm.Route_pass.mode_to_string route)
                          (report.Trackfm.Pipeline.guards
                             .Trackfm.Guard_pass.guarded_loads
                          + report.Trackfm.Pipeline.guards
                              .Trackfm.Guard_pass.guarded_stores)
                          (Trackfm.Elide_pass.total_elided e)
                          e.Trackfm.Elide_pass.elided_same
                          e.Trackfm.Elide_pass.elided_congruent
                          e.Trackfm.Elide_pass.elided_range
                          e.Trackfm.Elide_pass.hoisted
                          e.Trackfm.Elide_pass.upgraded
                          e.Trackfm.Elide_pass.widened
                          r.Trackfm.Route_pass.routed
                          (if ok then "OK" else "UNSOUND");
                        if not ok then begin
                          incr failures;
                          List.iter
                            (fun v ->
                              Printf.printf "    violation: %s\n"
                                (Tfm_checker.Coverage.violation_to_string v))
                            violations;
                          List.iter
                            (fun msg -> Printf.printf "    witness: %s\n" msg)
                            witness_errors;
                          List.iter
                            (fun msg -> Printf.printf "    routing: %s\n" msg)
                            routing_errors
                        end)
                      [ `Off; `Static ])
                  [ true; false ])
              [ true; false ])
          [ ("off", `Off); ("gated", `Gated) ])
      selected;
    (* With --engine compiled, also run each workload's raw module under
       both engines and require identical results: the static lint plus
       a runtime differential against the interpreter oracle. *)
    if engine = Engine.Compiled then begin
      print_newline ();
      List.iter
        (fun w ->
          let run engine =
            let o = Driver.run_local ~engine ~blobs:w.blobs w.build in
            ( o.Driver.ret,
              o.Driver.cycles,
              o.Driver.instrs,
              List.sort compare (Clock.counters o.Driver.clock) )
          in
          let oracle = run Engine.Interp and compiled = run Engine.Compiled in
          let ok = oracle = compiled in
          Printf.printf "%-14s engine-diff %s\n" w.wname
            (if ok then "OK" else "DIVERGED");
          if not ok then incr failures)
        selected
    end;
    if !failures > 0 then begin
      Printf.printf "\n%d unsound configuration(s)\n" !failures;
      1
    end
    else 0
  end

(* Print the interprocedural view of one workload's raw module: the call
   graph (bottom-up SCCs, recursion marked), every function's computed
   summary, and the summary-coverage lint naming functions stuck at
   bottom. With --ir, also dump the IR with call sites annotated by
   their callee's summary. Deterministic output: CI diffs two runs. *)
let summaries_cmd workload_name o1 show_ir =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      let m = (build_of w o1) () in
      let env = Tfm_analysis.Summary.compute m in
      print_string (Tfm_analysis.Summary.to_string m env);
      (match Tfm_analysis.Summary.lint m env with
      | [] -> print_endline "summary-coverage: all functions summarized"
      | stuck ->
          Printf.printf "summary-coverage: %d function(s) at bottom\n"
            (List.length stuck);
          List.iter (fun line -> Printf.printf "  %s\n" line) stuck);
      if show_ir then begin
        print_newline ();
        print_string
          (Printer.module_to_string_annotated
             (Tfm_analysis.Summary.annotate env)
             m)
      end;
      0

(* Static access-pattern classification dump: the evidence the hybrid
   route pass acts on, printed per function in deterministic order
   (function order, then ascending instruction id), plus the routing
   decisions a static-mode compile makes on the transformed module. CI
   byte-compares two runs of this output. *)
let classify_cmd workload_name o1 json =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      let m = (build_of w o1) () in
      let env = Tfm_analysis.Summary.compute m in
      let shapes = Tfm_analysis.Shape.analyze m in
      let per_fun =
        List.map
          (fun f ->
            ( f.Ir.fname,
              Tfm_analysis.Access_pattern.analyze ~summaries:env ~shapes f ))
          m.Ir.funcs
      in
      let config =
        {
          Trackfm.Pipeline.default_config with
          Trackfm.Pipeline.route = `Static;
        }
      in
      let report = Trackfm.Pipeline.run config ((build_of w o1) ()) in
      let r = report.Trackfm.Pipeline.routing in
      if json then begin
        (* Machine-readable variant: field order is fixed by
           construction, so two runs are byte-identical and CI can both
           diff and schema-validate the output. *)
        let open Telemetry.Json in
        let site_json (s : Tfm_analysis.Access_pattern.site) =
          Obj
            [
              ("instr", Int s.Tfm_analysis.Access_pattern.instr_id);
              ("block", String s.Tfm_analysis.Access_pattern.block);
              ( "kind",
                String
                  (if s.Tfm_analysis.Access_pattern.is_store then "store"
                   else "load") );
              ("size", Int s.Tfm_analysis.Access_pattern.size);
              ( "class",
                String
                  (Tfm_analysis.Access_pattern.cls_to_string
                     s.Tfm_analysis.Access_pattern.cls) );
              ( "stride",
                match s.Tfm_analysis.Access_pattern.stride with
                | Some v -> Int v
                | None -> Null );
              ("chain_depth", Int s.Tfm_analysis.Access_pattern.chain_depth);
              ( "shape",
                match s.Tfm_analysis.Access_pattern.shape with
                | Some k -> String k
                | None -> Null );
              ("density", Float s.Tfm_analysis.Access_pattern.density);
              ("rationale", String s.Tfm_analysis.Access_pattern.rationale);
            ]
        in
        let j =
          Obj
            [
              ("workload", String w.wname);
              ( "functions",
                List
                  (List.map
                     (fun (fname, t) ->
                       Obj
                         [
                           ("name", String fname);
                           ( "sites",
                             List
                               (List.map site_json
                                  (Tfm_analysis.Access_pattern.sites t)) );
                         ])
                     per_fun) );
              ( "routing",
                Obj
                  [
                    ("routed", Int r.Trackfm.Route_pass.routed);
                    ("kept_pinned", Int r.Trackfm.Route_pass.kept_pinned);
                    ("kept_covered", Int r.Trackfm.Route_pass.kept_covered);
                    ("upgraded", Int r.Trackfm.Route_pass.upgraded);
                    ( "routes",
                      List
                        (List.map
                           (fun (fname, (rt : Tfm_checker.Coverage.routing)) ->
                             Obj
                               [
                                 ("func", String fname);
                                 ( "access",
                                   Int rt.Tfm_checker.Coverage.routed_access );
                                 ("page_call", Int rt.Tfm_checker.Coverage.page_call);
                                 ("class", String rt.Tfm_checker.Coverage.cls);
                               ])
                           r.Trackfm.Route_pass.routes) );
                  ] );
            ]
        in
        print_endline (to_string j)
      end
      else begin
        List.iter
          (fun (_, t) -> print_string (Tfm_analysis.Access_pattern.dump t))
          per_fun;
        print_newline ();
        Printf.printf
          "hybrid routing (static): %d routed, %d kept pinned, %d kept covered\n"
          r.Trackfm.Route_pass.routed r.Trackfm.Route_pass.kept_pinned
          r.Trackfm.Route_pass.kept_covered;
        List.iter
          (fun (fname, (rt : Tfm_checker.Coverage.routing)) ->
            Printf.printf "  %s: %%%d -> page call %%%d [%s]\n" fname
              rt.Tfm_checker.Coverage.routed_access
              rt.Tfm_checker.Coverage.page_call rt.Tfm_checker.Coverage.cls)
          r.Trackfm.Route_pass.routes
      end;
      0

(* Shape-analysis dump (deterministic: CI byte-compares two runs), and
   — with [--shadow] — the dynamic audit: execute the statically routed
   program under the interpreter with the per-site depth recorder and
   cross-check every static class against the observed dependent-load
   depths. A lying shape summary that misroutes a site shows up here as
   a MISMATCH even though the structural checker (which never consults
   shape facts) accepts the module. *)
let shape_cmd workload_name o1 shadow_mode local_pct =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      let m = (build_of w o1) () in
      print_string (Tfm_analysis.Shape.dump (Tfm_analysis.Shape.analyze m) m);
      if not shadow_mode then 0
      else begin
        let sh = Shadow.create () in
        let budget = max (16 * 4096) (w.working_set * local_pct / 100) in
        let opts =
          {
            (Driver.tfm_defaults ~local_budget:budget) with
            Driver.route = `Static;
          }
        in
        let o, report =
          Driver.run_trackfm ~blobs:w.blobs ~shadow:sh (build_of w o1) opts
        in
        print_newline ();
        print_string (Shadow.dump sh);
        let classes =
          report.Trackfm.Pipeline.routing.Trackfm.Route_pass.classes
        in
        let checked = ref 0 and confirmed = ref 0 and unchecked = ref 0 in
        let mismatches = ref [] in
        List.iter
          (fun (fname, (s : Tfm_analysis.Access_pattern.site)) ->
            incr checked;
            match
              Shadow.check sh ~func:fname
                ~instr:s.Tfm_analysis.Access_pattern.instr_id
                ~cls:
                  (Tfm_analysis.Access_pattern.cls_to_string
                     s.Tfm_analysis.Access_pattern.cls)
            with
            | Shadow.Confirmed -> incr confirmed
            | Shadow.Unchecked -> incr unchecked
            | Shadow.Mismatch msg ->
                mismatches :=
                  Printf.sprintf "%s:%%%d %s" fname
                    s.Tfm_analysis.Access_pattern.instr_id msg
                  :: !mismatches)
          classes;
        print_newline ();
        if o.Driver.ret <> w.expected then begin
          Printf.printf
            "checksum MISMATCH: got %d, expected %d\nshape-shadow FAIL\n"
            o.Driver.ret w.expected;
          1
        end
        else begin
          Printf.printf
            "shadow validation: %d site(s) checked, %d confirmed, %d \
             unchecked, %d mismatch(es)\n"
            !checked !confirmed !unchecked
            (List.length !mismatches);
          List.iter
            (fun l -> Printf.printf "  MISMATCH %s\n" l)
            (List.rev !mismatches);
          if !mismatches = [] then begin
            print_endline "shape-shadow PASS";
            0
          end
          else begin
            print_endline "shape-shadow FAIL";
            1
          end
        end
      end

let list_cmd () =
  List.iter
    (fun w ->
      Printf.printf "%-14s %-45s %s\n" w.wname w.describe
        (Tfm_util.Units.bytes_to_string w.working_set))
    (workloads ());
  0

(* -- cmdliner wiring -- *)

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to run (see list).")

let system_arg =
  Arg.(
    value & opt string "trackfm"
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"Memory system: local, trackfm or fastswap.")

let local_mem_arg =
  Arg.(
    value & opt int 25
    & info [ "m"; "local-mem" ] ~docv:"PCT"
        ~doc:"Local memory as a percentage of the working set.")

let object_size_arg =
  Arg.(
    value & opt int 4096
    & info [ "o"; "object-size" ] ~docv:"BYTES"
        ~doc:"TrackFM/AIFM object size (power of two, 64-65536).")

let chunk_arg =
  Arg.(
    value & opt string "gated"
    & info [ "c"; "chunk" ] ~docv:"MODE"
        ~doc:"Loop chunking mode: off, all, or gated (profiled cost model).")

let route_arg =
  Arg.(
    value & opt string "off"
    & info [ "route" ] ~docv:"MODE"
        ~doc:
          "Hybrid data plane (trackfm only): off, static (pointer-chasing \
           sites take the page-fault path, streaming sites keep guards), or \
           profiled (additionally upgrade mixed/unknown sites that a \
           profiling pre-run shows slow-path dominated).")

let prefetch_arg =
  Arg.(
    value & flag
    & info [ "no-prefetch" ] ~doc:"Disable compiler-directed prefetching.")

let o1_arg =
  Arg.(
    value & flag
    & info [ "o1" ] ~doc:"Run the O1 pre-optimization pipeline first.")

let no_summaries_arg =
  Arg.(
    value & flag
    & info [ "no-summaries" ]
        ~doc:
          "Disable interprocedural summaries: every call clobbers custody \
           and every call result classifies unknown (the pre-summary \
           pipeline).")

let no_shapes_arg =
  Arg.(
    value & flag
    & info [ "no-shapes" ]
        ~doc:
          "Disable the interprocedural shape analysis: helper-hidden \
           pointer chases classify unknown and static routing falls back \
           to intraprocedural evidence only.")

let faults_arg =
  Arg.(
    value & opt string "none"
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fabric fault injection: none, light, medium, heavy, or a \
           comma-separated spec of drop=P, timeout=P, spike=P:CYC[:ALPHA], \
           outage=PERIOD:LEN.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Seed for the fault injector's random stream; a fixed seed makes \
           the whole fault schedule (and every counter) reproducible.")

let replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Number of remote memory nodes (1-8). With 1 and no crash/corrupt \
           faults the single-server model is kept bit for bit.")

let ack_arg =
  Arg.(
    value & opt int 1
    & info [ "ack" ] ~docv:"K"
        ~doc:
          "Writebacks are acknowledged once $(docv) replicas hold the object \
           (1 <= K <= replicas); the remaining copies apply after a \
           replication lag.")

let engine_arg =
  Arg.(
    value & opt string "interp"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: interp (the tree-walking reference \
           interpreter, the differential oracle) or compiled (closure-\
           compiled, same observable behaviour, ~10x faster dispatch).")

let counters_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "counters-json" ] ~docv:"FILE"
        ~doc:
          "Write a deterministic JSON record of the run (inputs, checksum, \
           cycles, all counters sorted by name) to $(docv); the CI fault \
           matrix diffs these against golden files.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event JSON to $(docv) (open in \
           chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the sampled counter time-series as CSV to $(docv).")

let sample_interval_arg =
  Arg.(
    value & opt int 250_000
    & info [ "sample-interval" ] ~docv:"CYCLES"
        ~doc:"Simulated cycles between counter snapshots.")

let attribution_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "attribution" ] ~docv:"FILE"
        ~doc:
          "Enable causal span tracing and write the per-class critical-path \
           attribution summary (JSON) to $(docv); read it back with report \
           critical-path --from or report slo --from.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-recorder" ] ~docv:"FILE"
        ~doc:
          "Arm the flight recorder: on the first fault, breaker opening, \
           node crash or checker violation, dump the recent span and event \
           rings to $(docv).")

let run_term =
  Term.(
    const
      (fun w s e m o c rt np ns nsh o1 fs fseed repl ack cj tr me si attr fl ->
        run_cmd w s e m o c rt (not np) (not ns) (not nsh) o1 fs fseed repl ack
          cj tr me si attr fl)
    $ workload_arg $ system_arg $ engine_arg $ local_mem_arg $ object_size_arg
    $ chunk_arg $ route_arg $ prefetch_arg $ no_summaries_arg $ no_shapes_arg
    $ o1_arg $ faults_arg $ fault_seed_arg $ replicas_arg $ ack_arg
    $ counters_json_arg $ trace_arg $ metrics_arg $ sample_interval_arg
    $ attribution_arg $ flight_arg)

let run_info = Cmd.info "run" ~doc:"Compile and run a workload"

let report_term =
  Term.(
    const (fun w s e m o c rt np ns o1 fs fseed tr me si ->
        report_cmd w s e m o c rt (not np) (not ns) o1 fs fseed tr me si)
    $ workload_arg $ system_arg $ engine_arg $ local_mem_arg $ object_size_arg
    $ chunk_arg $ route_arg $ prefetch_arg $ no_summaries_arg $ o1_arg
    $ faults_arg $ fault_seed_arg $ trace_arg $ metrics_arg
    $ sample_interval_arg)

let report_info =
  Cmd.info "report"
    ~doc:
      "Run a workload with telemetry and print guard-site hotspots, latency \
       histograms and counter sparklines (subcommands: critical-path, slo)"

let workload_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Workload to run live (omit when reading --from).")

let from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from" ] ~docv:"FILE"
        ~doc:
          "Read a previously exported attribution JSON (run --attribution) \
           instead of running a workload.")

let critical_path_term =
  Term.(
    const (fun w s e m o c np ns o1 fs fseed from ->
        critical_path_cmd w s e m o c (not np) (not ns) o1 fs fseed from)
    $ workload_opt_arg $ system_arg $ engine_arg $ local_mem_arg
    $ object_size_arg $ chunk_arg $ prefetch_arg $ no_summaries_arg $ o1_arg
    $ faults_arg $ fault_seed_arg $ from_arg)

let critical_path_info =
  Cmd.info "critical-path"
    ~doc:
      "Per-operation-class latency percentiles and the exact per-category \
       cycle decomposition (compute, guard paths, queueing, retry, failover, \
       eviction), live or from an attribution file"

let slo_spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Declarative SLOs: semicolon-separated class:objectives, each \
           objective metric<=limit (metrics pNN, mean, max; limits in \
           cycles with k/m/g suffixes), e.g. \
           'lookup:p99<=250k,p50<=40k;get:p999<=2m'.")

let slo_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo-file" ] ~docv:"FILE"
        ~doc:
          "Read the SLO rules from $(docv) instead of --slo: one \
           class:objectives spec per line, '#' starts a comment, blank \
           lines ignored; parse errors name the offending line.")

let slo_term =
  Term.(
    const (fun w s e m o c np ns o1 fs fseed from spec file ->
        slo_cmd w s e m o c (not np) (not ns) o1 fs fseed from spec file)
    $ workload_opt_arg $ system_arg $ engine_arg $ local_mem_arg
    $ object_size_arg $ chunk_arg $ prefetch_arg $ no_summaries_arg $ o1_arg
    $ faults_arg $ fault_seed_arg $ from_arg $ slo_spec_arg $ slo_file_arg)

let slo_info =
  Cmd.info "slo"
    ~doc:
      "Evaluate declarative latency SLOs against per-class span percentiles; \
       exit 1 on any violation"

let report_group =
  Cmd.group ~default:report_term report_info
    [ Cmd.v critical_path_info critical_path_term; Cmd.v slo_info slo_term ]

let schema_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "schema" ] ~docv:"FILE" ~doc:"Schema file (JSON).")

let validate_input_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"INPUT" ~doc:"JSON file to validate.")

let validate_term = Term.(const validate_cmd $ schema_arg $ validate_input_arg)

let validate_info =
  Cmd.info "validate"
    ~doc:
      "Validate a JSON file (exported trace, attribution) against a \
       checked-in structural schema"

let list_info = Cmd.info "list" ~doc:"List available workloads"

let sweep_term =
  Term.(const sweep_cmd $ workload_arg $ object_size_arg)

let sweep_info =
  Cmd.info "sweep"
    ~doc:"Sweep local memory and chart TrackFM vs Fastswap slowdowns"

let autotune_term = Term.(const autotune_cmd $ workload_arg $ local_mem_arg)

let autotune_info =
  Cmd.info "autotune" ~doc:"Pick the best TrackFM object size by search"

let check_workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Check only this workload (default: all).")

let check_term = Term.(const check_cmd $ check_workload_arg $ engine_arg)

let check_info =
  Cmd.info "check"
    ~doc:
      "Compile every workload and run the guard-coverage verifier and \
       elision-witness re-check over the transformed IR, with and without \
       interprocedural summaries (CI lint stage). With --engine compiled, \
       also run each workload under both engines and require identical \
       results and counters (runtime differential)."

let ir_arg =
  Arg.(
    value & flag
    & info [ "ir" ]
        ~doc:"Also dump the IR with call sites annotated by !summary comments.")

let summaries_term =
  Term.(const summaries_cmd $ workload_arg $ o1_arg $ ir_arg)

let summaries_info =
  Cmd.info "summaries"
    ~doc:
      "Print the call graph (SCCs marked), every function's interprocedural \
       summary, and the summary-coverage lint for a workload"

let classify_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the classification and routing decisions as JSON with a \
           fixed field order (machine-readable; CI schema-validates and \
           byte-compares it).")

let classify_term =
  Term.(const classify_cmd $ workload_arg $ o1_arg $ classify_json_arg)

let classify_info =
  Cmd.info "classify"
    ~doc:
      "Print the static access-pattern classification (streaming / \
       pointer-chase / mixed / unknown with stride, chain depth, shape, \
       density and rationale) of every may-heap access in a workload, and \
       the hybrid routing decisions a static-mode compile makes"

let shadow_arg =
  Arg.(
    value & flag
    & info [ "shadow" ]
        ~doc:
          "Also execute the statically routed workload under the \
           interpreter with the dynamic depth recorder and cross-check \
           every static class against the observed dependent-load depths \
           (exit 1 on any mismatch).")

let shape_term =
  Term.(const shape_cmd $ workload_arg $ o1_arg $ shadow_arg $ local_mem_arg)

let shape_info =
  Cmd.info "shape"
    ~doc:
      "Print the interprocedural shape analysis of a workload: per-function \
       chase summaries (return hops, per-argument traversal depths, link \
       stores) and per-allocation-site structure kinds; --shadow runs the \
       dynamic audit"

let backend_arg =
  Arg.(
    value & opt string "trackfm"
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:"Far-memory backend: trackfm, fastswap or aifm.")

let rate_arg =
  Arg.(
    value & opt float 30.0
    & info [ "rate" ] ~docv:"R"
        ~doc:
          "Offered load in requests per Mcycle across all tenants (open \
           loop: arrivals never slow down under backlog).")

let requests_arg =
  Arg.(
    value & opt int 20_000
    & info [ "requests" ] ~docv:"N" ~doc:"Arrivals to generate.")

let tenants_arg =
  Arg.(
    value & opt int 2
    & info [ "tenants" ] ~docv:"N" ~doc:"Number of equal-weight tenants.")

let keys_arg =
  Arg.(
    value & opt int 65_536
    & info [ "keys" ] ~docv:"N" ~doc:"Key-space size per tenant.")

let skew_arg =
  Arg.(
    value & opt float 0.99
    & info [ "skew" ] ~docv:"S" ~doc:"Zipf skew of key popularity.")

let value_size_arg =
  Arg.(
    value & opt int 64
    & info [ "value-size" ] ~docv:"BYTES"
        ~doc:"Bytes per value (multiple of 8, divides the 4 KiB page).")

let budget_arg =
  Arg.(
    value & opt int 65_536
    & info [ "budget" ] ~docv:"BYTES"
        ~doc:"Per-tenant local-memory budget in bytes.")

let connections_arg =
  Arg.(
    value & opt int 64
    & info [ "connections" ] ~docv:"N"
        ~doc:"Concurrent connection-handler tasks.")

let service_cycles_arg =
  Arg.(
    value & opt int 10_000
    & info [ "service-cycles" ] ~docv:"CYC"
        ~doc:"CPU cost of one request (parse, hash, respond).")

let readahead_arg =
  Arg.(
    value & opt int 2
    & info [ "readahead" ] ~docv:"PAGES"
        ~doc:"Fastswap readahead pages per fault (0 disables).")

let queue_cap_arg =
  Arg.(
    value & opt int 256
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Accept-queue bound for admission control.")

let deadline_arg =
  Arg.(
    value & opt int 500_000
    & info [ "deadline" ] ~docv:"CYC"
        ~doc:"Per-request latency deadline in cycles.")

let no_admission_arg =
  Arg.(
    value & flag
    & info [ "no-admission" ] ~doc:"Disable admission control.")

let no_shedding_arg =
  Arg.(value & flag & info [ "no-shedding" ] ~doc:"Disable load shedding.")

let no_degradation_arg =
  Arg.(
    value & flag
    & info [ "no-degradation" ]
        ~doc:"Disable graceful degradation (serve-stale, readahead shed).")

let open_loop_arg =
  Arg.(
    value & flag
    & info [ "open-loop" ]
        ~doc:
          "Disable the whole control plane (equivalent to --no-admission \
           --no-shedding --no-degradation): the hockey-stick baseline.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Traffic seed (arrival gaps, tenant and key picks); a fixed seed \
           makes the whole run byte-for-byte reproducible.")

let serving_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serving-json" ] ~docv:"FILE"
        ~doc:
          "Write the deterministic machine-readable summary (params echo, \
           per-tenant counts and percentiles, goodput, counters) to \
           $(docv); the CI serving stage diffs these against goldens.")

let serve_term =
  Term.(
    const serve_cmd $ backend_arg $ rate_arg $ requests_arg $ tenants_arg
    $ keys_arg $ skew_arg $ value_size_arg $ budget_arg $ connections_arg
    $ service_cycles_arg $ readahead_arg $ queue_cap_arg $ deadline_arg
    $ no_admission_arg $ no_shedding_arg $ no_degradation_arg $ open_loop_arg
    $ faults_arg $ fault_seed_arg $ replicas_arg $ ack_arg $ seed_arg
    $ serving_json_arg $ attribution_arg $ flight_arg)

let serve_info =
  Cmd.info "serve"
    ~doc:
      "Run the overload-robust multi-tenant serving scenario: open-loop \
       Poisson/Zipf traffic against a chosen far-memory backend, with \
       admission control, load shedding and graceful degradation"

let main =
  Cmd.group
    (Cmd.info "trackfm_cli" ~version:"1.0"
       ~doc:"TrackFM far-memory reproduction driver")
    [
      Cmd.v run_info run_term;
      Cmd.v serve_info serve_term;
      report_group;
      Cmd.v list_info Term.(const list_cmd $ const ());
      Cmd.v sweep_info sweep_term;
      Cmd.v autotune_info autotune_term;
      Cmd.v check_info check_term;
      Cmd.v summaries_info summaries_term;
      Cmd.v classify_info classify_term;
      Cmd.v shape_info shape_term;
      Cmd.v validate_info validate_term;
    ]

let () = exit (Cmd.eval' main)
