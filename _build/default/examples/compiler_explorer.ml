(* Compiler explorer: watch the TrackFM pipeline transform a program.

   Prints the IR of a small loop before and after the passes, the alias
   classification that decides which accesses need guards, the detected
   induction variables and strided accesses, and the cost-model verdict
   for each chunking candidate.

   Run with: dune exec examples/compiler_explorer.exe *)

let build () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let heap = Builder.call b "malloc" [ Ir.Const 65536 ] in
  let stack = Builder.alloca b 16 in
  (* a dense loop (chunking pays) ... *)
  let sums =
    Builder.for_loop_acc b ~hint:"dense" ~init:(Ir.Const 0)
      ~bound:(Ir.Const 8192) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:i ~accs ->
        let v = Builder.load b ~size:8 (Builder.gep b heap ~index:i ~scale:8 ()) in
        [ Builder.add b (List.hd accs) v ])
  in
  (* ... a short loop (chunking cannot amortize) ... *)
  Builder.for_loop b ~hint:"short" ~init:(Ir.Const 0) ~bound:(Ir.Const 4)
    (fun b i ->
      let p = Builder.gep b heap ~index:i ~scale:8 () in
      let v = Builder.load b ~size:8 p in
      Builder.store b (Builder.add b v (Ir.Const 1)) ~ptr:p);
  (* ... and a stack access that needs no guard at all. *)
  Builder.store b (List.hd sums) ~ptr:stack;
  Builder.ret b (Some (Builder.load b stack));
  Verifier.check_module m;
  m

let () =
  let m = build () in
  Printf.printf "=== IR before TrackFM ===\n%s\n" (Printer.module_to_string m);

  (* The analyses the passes are built on. *)
  let f = Ir.find_func m "main" in
  let alias = Alias.analyze f in
  Printf.printf "=== alias classification (guard eligibility) ===\n";
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Load { ptr; _ } | Ir.Store { ptr; _ } ->
              Format.printf "  %a: pointer class %a -> %s@." Printer.pp_instr i
                Alias.pp_cls (Alias.classify alias ptr)
                (if Alias.needs_guard alias ptr then "GUARD" else "skip")
          | _ -> ())
        b.instrs)
    f.blocks;

  let li = Loops.analyze f in
  let ind = Induction.analyze f in
  Printf.printf "\n=== loops and induction variables ===\n";
  List.iter
    (fun (l : Loops.loop) ->
      Printf.printf "  loop %s (depth %d): %d IV(s), %d strided access(es)\n"
        l.Loops.header l.Loops.depth
        (List.length (Induction.ivs_of_loop ind l))
        (List.length (Induction.strided_accesses ind l)))
    (Loops.loops li);

  (* Run the full pipeline with a profile so the gate has trip counts. *)
  let profile = Workloads.Driver.profile_of build in
  let m = build () in
  let config =
    { Trackfm.Pipeline.default_config with profile = Some profile }
  in
  let report = Trackfm.Pipeline.run config m in
  Printf.printf "\n=== chunking candidates and the cost-model verdict ===\n";
  List.iter
    (fun (c : Trackfm.Chunk_pass.candidate) ->
      Printf.printf
        "  loop %s: stride %dB, density %d, avg trip %s -> %s\n"
        c.Trackfm.Chunk_pass.header c.Trackfm.Chunk_pass.byte_stride
        c.Trackfm.Chunk_pass.density
        (match c.Trackfm.Chunk_pass.avg_trip with
        | Some t -> Printf.sprintf "%.0f" t
        | None -> "unknown")
        (if c.Trackfm.Chunk_pass.selected then "CHUNK" else "keep guards"))
    report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.candidates;
  Printf.printf
    "\nguards injected: %d loads, %d stores; skipped %d non-heap accesses\n"
    report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
    report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores
    report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.skipped_non_heap;
  Printf.printf "\n=== IR after TrackFM ===\n%s" (Printer.module_to_string m)
