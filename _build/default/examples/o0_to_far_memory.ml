(* From -O0-style code to far memory: why the pre-optimization matters.

   Frontends at -O0 keep variables in stack slots and leave helper calls
   uninlined. Both defeat TrackFM's loop analysis: a memory-cell
   induction variable is not a phi, and a strided access inside a callee
   is invisible to the caller's loops. The paper hit exactly this on the
   NAS FT benchmark and fixed it by pre-optimizing ("TFM/O1",
   Figure 17b).

   This example builds such a program, compiles it for far memory with
   and without the O1 pipeline (inline + mem2reg + cleanups), and shows
   the difference in what the chunking pass can do and what the run
   costs.

   Run with: dune exec examples/o0_to_far_memory.exe *)

let n = 300_000

(* sum_at(arr, i) — the helper hiding the strided access. *)
let build () =
  let m = Ir.create_module () in
  let bh = Builder.create m ~name:"sum_at" ~nparams:2 in
  let ptr = Builder.gep bh (Builder.arg 0) ~index:(Builder.arg 1) ~scale:8 () in
  Builder.ret bh (Some (Builder.load bh ptr));
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arr = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  Builder.for_loop b ~hint:"fill" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      Builder.store b (Builder.binop b Ir.And i (Ir.Const 0xFF))
        ~ptr:(Builder.gep b arr ~index:i ~scale:8 ()));
  ignore (Builder.call b "!bench_begin" []);
  (* -O0 shape: accumulator and induction variable live in stack slots *)
  let acc_slot = Builder.alloca b 8 in
  let i_slot = Builder.alloca b 8 in
  Builder.store b (Ir.Const 0) ~ptr:acc_slot;
  Builder.store b (Ir.Const 0) ~ptr:i_slot;
  let header = Builder.add_block b "h" in
  let body = Builder.add_block b "b" in
  let exit_l = Builder.add_block b "x" in
  Builder.br b header;
  Builder.set_block b header;
  let i = Builder.load b i_slot in
  Builder.cbr b (Builder.icmp b Ir.Lt i (Ir.Const n)) body exit_l;
  Builder.set_block b body;
  let i' = Builder.load b i_slot in
  let v = Builder.call b "sum_at" [ arr; i' ] in
  let acc = Builder.load b acc_slot in
  Builder.store b
    (Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const 0x3FFFFFFF))
    ~ptr:acc_slot;
  Builder.store b (Builder.add b i' (Ir.Const 1)) ~ptr:i_slot;
  Builder.br b header;
  Builder.set_block b exit_l;
  Builder.ret b (Some (Builder.load b acc_slot));
  Verifier.check_module m;
  m

let compile_and_run ~o1 =
  let m = build () in
  let pre = if o1 then Tfm_opt.O1.run m else 0 in
  let report = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:(n * 8 / 4)
  in
  let r = Interp.run (Backend.trackfm rt store) m ~entry:"main" in
  (pre, report, r, clock)

let () =
  Printf.printf
    "program: -O0-style loop (stack-slot IV and accumulator) summing a \
     %s array through a helper call, 25%% local memory\n\n"
    (Tfm_util.Units.bytes_to_string (n * 8));
  let describe label (pre, report, (r : Interp.result), clock) =
    Printf.printf "%s:\n" label;
    if pre > 0 then Printf.printf "  O1 rewrites: %d\n" pre;
    Printf.printf "  chunked loops: %d; guards injected: %d\n"
      report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.chunk_sites
      (report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
      + report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores);
    Printf.printf "  result %d in %s (%d fast guards, %d boundary checks)\n\n"
      r.Interp.ret
      (Tfm_util.Units.cycles_to_string r.Interp.cycles)
      (Clock.get clock "tfm.fast_guards")
      (Clock.get clock "tfm.boundary_checks")
  in
  let plain = compile_and_run ~o1:false in
  let optimized = compile_and_run ~o1:true in
  describe "TrackFM alone (unoptimized input)" plain;
  describe "O1 then TrackFM (the paper's TFM/O1)" optimized;
  let _, _, r1, _ = plain and _, _, r2, _ = optimized in
  assert (r1.Interp.ret = r2.Interp.ret);
  Printf.printf
    "Same answer, but pre-optimization turned per-element guards into \n\
     boundary checks: inlining surfaced the strided access and mem2reg \n\
     turned the stack-slot IV into a phi the chunking pass understands.\n"
