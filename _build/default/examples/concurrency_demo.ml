(* Latency hiding with user-level tasks: why AIFM runs on Shenango.

   A far-memory workload alternates a little computation with object
   fetches. One task exposes every fetch's full TCP round trip; a pool of
   tasks overlaps them, and throughput becomes CPU-bound — the property
   the TrackFM/AIFM runtime inherits from Shenango.

   Run with: dune exec examples/concurrency_demo.exe *)

let () =
  let cost = Cost_model.default in
  let fetch =
    Cost_model.transfer_cycles cost ~latency:cost.Cost_model.tcp_latency
      ~bytes:4096
  in
  Printf.printf "one remote fetch: %s\n\n" (Tfm_util.Units.cycles_to_string fetch);
  let requests = 512 in
  Printf.printf "%-8s %-16s %s\n" "tasks" "completion" "requests/s";
  List.iter
    (fun ntasks ->
      let s = Shenango.Sched.create () in
      for _ = 1 to ntasks do
        Shenango.Sched.spawn s (fun () ->
            for _ = 1 to requests / ntasks do
              Shenango.Sched.work 1_000;
              Shenango.Sched.block fetch
            done)
      done;
      let total = Shenango.Sched.run s in
      Printf.printf "%-8d %-16s %.0f\n" ntasks
        (Tfm_util.Units.cycles_to_string total)
        (float_of_int requests /. (float_of_int total /. 2.4e9)))
    [ 1; 2; 4; 8; 16; 32 ];
  Printf.printf
    "\nWith one task the fetch latency is fully exposed; with enough \n\
     tasks the core never idles and throughput is limited by the \n\
     1K-cycle compute per request.\n"
