examples/quickstart.mli:
