examples/o0_to_far_memory.mli:
