examples/concurrency_demo.ml: Cost_model List Printf Shenango Tfm_util
