examples/o0_to_far_memory.ml: Backend Builder Clock Cost_model Interp Ir Memstore Printf Tfm_opt Tfm_util Trackfm Verifier
