examples/remote_datastructures.mli:
