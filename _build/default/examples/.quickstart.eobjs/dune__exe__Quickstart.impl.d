examples/quickstart.ml: Backend Builder Clock Cost_model Interp Ir List Memstore Printf Tfm_util Trackfm Verifier
