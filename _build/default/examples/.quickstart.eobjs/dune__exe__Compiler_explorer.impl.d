examples/compiler_explorer.ml: Alias Builder Format Induction Ir List Loops Printer Printf Trackfm Verifier Workloads
