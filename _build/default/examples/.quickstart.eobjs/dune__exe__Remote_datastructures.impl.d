examples/remote_datastructures.ml: Aifm Clock Cost_model Memstore Printf Tfm_util
