examples/autotune.ml: Driver Hashmap List Printf Stream Tfm_util Workloads
