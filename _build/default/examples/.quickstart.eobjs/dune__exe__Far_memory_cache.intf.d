examples/far_memory_cache.mli:
