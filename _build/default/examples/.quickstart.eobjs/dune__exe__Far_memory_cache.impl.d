examples/far_memory_cache.ml: Driver List Memcached Printf Tfm_util Workloads
