examples/autotune.mli:
