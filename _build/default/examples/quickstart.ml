(* Quickstart: compile an unmodified program for far memory and run it.

   This is the 30-second tour of the public API:
   1. write a plain program against libc malloc (here: built with
      Ir/Builder, standing in for clang-emitted bitcode);
   2. run the TrackFM pipeline over it — no source changes;
   3. execute it on a simulated two-node cluster with only 25% of its
      working set in local DRAM, and compare against the same program
      with all-local memory.

   Run with: dune exec examples/quickstart.exe *)

let build_program () =
  (* A toy "application": sum a 2 MiB heap array. Note it allocates with
     ordinary malloc and uses ordinary loads - nothing far-memory-aware. *)
  let n = 500_000 in
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let arr = Builder.call b "malloc" [ Ir.Const (n * 4) ] in
  Builder.for_loop b ~hint:"init" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let v = Builder.binop b Ir.And i (Ir.Const 0xFFFF) in
      Builder.store b ~size:4 v ~ptr:(Builder.gep b arr ~index:i ~scale:4 ()));
  let sums =
    Builder.for_loop_acc b ~hint:"sum" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Const 0 ]
      (fun b ~iv:i ~accs ->
        let acc = List.hd accs in
        let v = Builder.load b ~size:4 (Builder.gep b arr ~index:i ~scale:4 ()) in
        [ Builder.binop b Ir.And (Builder.add b acc v) (Ir.Const 0x3FFFFFFF) ])
  in
  Builder.ret b (Some (List.hd sums));
  Verifier.check_module m;
  (m, n * 4)

let () =
  let _, ws = build_program () in
  Printf.printf "program working set: %s\n\n" (Tfm_util.Units.bytes_to_string ws);

  (* All-local baseline. *)
  let m, _ = build_program () in
  let clock = Clock.create () in
  let backend = Backend.local Cost_model.default clock (Memstore.create ()) in
  let local = Interp.run backend m ~entry:"main" in
  Printf.printf "all-local:        checksum=%-10d  %s\n" local.Interp.ret
    (Tfm_util.Units.cycles_to_string local.Interp.cycles);

  (* TrackFM: recompile, then run with 25% local memory. *)
  let m, _ = build_program () in
  let report = Trackfm.Pipeline.run Trackfm.Pipeline.default_config m in
  Printf.printf
    "\nTrackFM compile:  %d guards injected, %d loops chunked, code growth \
     %.2fx, %.1f ms\n"
    (report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
    + report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores)
    report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.chunk_sites
    (Trackfm.Pipeline.code_growth report)
    (report.Trackfm.Pipeline.compile_time_s *. 1e3);
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:(ws / 4)
  in
  let backend = Backend.trackfm rt store in
  let far = Interp.run backend m ~entry:"main" in
  Printf.printf "TrackFM @25%%:     checksum=%-10d  %s\n" far.Interp.ret
    (Tfm_util.Units.cycles_to_string far.Interp.cycles);
  Printf.printf
    "                  %d boundary checks, %d locality guards, %s fetched \
     over the network\n"
    (Clock.get clock "tfm.boundary_checks")
    (Clock.get clock "tfm.locality_guards")
    (Tfm_util.Units.bytes_to_string (Clock.get clock "net.bytes_in"));
  assert (local.Interp.ret = far.Interp.ret);
  Printf.printf
    "\nsame checksum under both configurations: the transformation is \
     semantics-preserving.\n"
