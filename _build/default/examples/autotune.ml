(* Object-size autotuning: the Section 3.2 proposal, live.

   The paper: "the small search space suggests that an autotuning
   approach is feasible ... an exhaustive search involving recompilation
   and a short-term execution". This example runs that exact loop for two
   workloads with opposite needs and shows the tuner picking opposite
   sizes.

   Run with: dune exec examples/autotune.exe *)

open Workloads

let show name results best =
  Printf.printf "%s:\n" name;
  List.iter
    (fun (osz, cycles) ->
      Printf.printf "  %5dB objects -> %s%s\n" osz
        (Tfm_util.Units.cycles_to_string cycles)
        (if osz = best then "   <- chosen" else ""))
    results;
  print_newline ()

let () =
  (* A Zipfian hashmap: tiny values, no spatial locality. *)
  let hp = Hashmap.default_params ~keys:40_000 ~lookups:60_000 in
  let blobs = [ (0, Hashmap.trace_blob hp) ] in
  let hws = Hashmap.working_set_bytes hp in
  let best_hm, hm_results =
    Driver.autotune_object_size ~blobs
      (fun () -> Hashmap.build hp ())
      ~local_budget:(hws / 4)
  in
  show "hashmap, Zipf 1.02 (fine-grained, low spatial locality)" hm_results
    best_hm;

  (* STREAM copy: perfect spatial locality. *)
  let n = 100_000 in
  let sws = Stream.working_set_bytes ~n ~kernel:Stream.Copy () in
  let best_st, st_results =
    Driver.autotune_object_size
      (fun () -> Stream.build ~n ~kernel:Stream.Copy ())
      ~local_budget:(sws / 4)
  in
  show "STREAM copy (sequential, high spatial locality)" st_results best_st;

  Printf.printf
    "The tuner recompiles the unmodified program once per candidate and \n\
     keeps the fastest — no programmer annotations, which is the point: \n\
     AIFM would ask the developer to pick these numbers per data \n\
     structure.\n";
  assert (best_hm < best_st)
