(* Far-memory cache: the paper's motivating datacenter scenario.

   A memcached-style key-value service holds a working set far larger
   than its local DRAM slice. We compare what an operator would see when
   the node runs with 1/2, 1/4 and 1/12 of the working set locally,
   under the three deployment options the paper studies:

   - kernel paging to the memory server (Fastswap),
   - the application recompiled with TrackFM (no source changes),
   - everything local (the overprovisioned baseline).

   Run with: dune exec examples/far_memory_cache.exe *)

open Workloads

let () =
  let p = Memcached.default_params ~keys:60_000 ~gets:40_000 ~skew:1.05 in
  let blobs = [ (0, Memcached.trace_blob p) ] in
  let ws = Memcached.working_set_bytes p in
  let build () = Memcached.build p () in
  Printf.printf
    "KV store: %d keys x %dB values, %d gets (Zipf %.2f), working set %s\n\n"
    p.Memcached.keys p.Memcached.value_size p.Memcached.gets p.Memcached.skew
    (Tfm_util.Units.bytes_to_string ws);
  let kops c = float_of_int p.Memcached.gets /. (float_of_int c /. 2.4e9) /. 1e3 in
  let lo = Driver.run_local ~blobs build in
  Printf.printf "all-local baseline: %.1f KOps/s\n\n" (kops lo.Driver.cycles);
  Printf.printf "%-12s %-14s %-14s %-16s %-16s\n" "local DRAM" "TrackFM KOps/s"
    "Fastswap KOps/s" "TrackFM GB moved" "Fastswap GB moved";
  List.iter
    (fun frac ->
      let budget = ws / frac in
      let tfm, _ =
        Driver.run_trackfm ~blobs build
          {
            (Driver.tfm_defaults ~local_budget:budget) with
            Driver.object_size = 64;
          }
      in
      let fs = Driver.run_fastswap ~blobs ~local_budget:budget build in
      assert (tfm.Driver.ret = fs.Driver.ret && tfm.Driver.ret = lo.Driver.ret);
      Printf.printf "1/%-10d %-14.1f %-14.1f %-16.3f %-16.3f\n" frac
        (kops tfm.Driver.cycles) (kops fs.Driver.cycles)
        (float_of_int (Driver.counter tfm "net.bytes_in") /. 1e9)
        (float_of_int (Driver.counter fs "net.bytes_in") /. 1e9))
    [ 2; 4; 12 ];
  Printf.printf
    "\nTrackFM's 64B objects move only the key/value bytes actually used;\n\
     the kernel moves whole 4KiB pages - the I/O amplification of \n\
     Section 4.4 - and its throughput falls behind as DRAM shrinks.\n"
