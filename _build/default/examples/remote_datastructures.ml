(* Library-based far memory: AIFM's remotable data structures.

   The alternative to recompiling with TrackFM is porting your code to a
   far-memory library. This example uses the AIFM analog directly: a
   remote array and a remote hashmap over a 1/8-of-working-set local
   budget, with the stride prefetcher active during scans.

   Run with: dune exec examples/remote_datastructures.exe *)

let () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let store = Memstore.create () in
  let n = 200_000 in
  let ws = n * 8 in
  let ctx =
    Aifm.Remote.create_ctx cost clock store ~object_size:4096
      ~local_budget:(ws / 8)
  in
  Printf.printf "remote array: %d elements, %s working set, 1/8 local\n" n
    (Tfm_util.Units.bytes_to_string ws);

  (* Populate, then scan with the iterator (prefetched) and with plain
     random gets, and compare what each costs. *)
  let arr = Aifm.Remote.Array.create ctx ~elem_size:8 ~len:n in
  for i = 0 to n - 1 do
    Aifm.Remote.Array.set arr i (i * 3)
  done;
  Clock.reset clock;
  let sum = ref 0 in
  Aifm.Remote.Array.iter_prefetched arr (fun _ v -> sum := !sum + v);
  let scan_cycles = Clock.cycles clock in
  Printf.printf "sequential scan (iterator): %s, %d/%d fetches prefetched\n"
    (Tfm_util.Units.cycles_to_string scan_cycles)
    (Clock.get clock "net.prefetched_fetches")
    (Clock.get clock "net.fetches");
  assert (!sum = 3 * n * (n - 1) / 2);

  Clock.reset clock;
  let rng = Tfm_util.Rng.create 99 in
  let got = ref 0 in
  for _ = 1 to n / 10 do
    got := !got + Aifm.Remote.Array.get arr (Tfm_util.Rng.int rng n)
  done;
  Printf.printf "random gets (1/10 the accesses): %s, %d demand fetches\n"
    (Tfm_util.Units.cycles_to_string (Clock.cycles clock))
    (Clock.get clock "aifm.demand_fetches");

  (* A remote hashmap on the same pool. *)
  let h = Aifm.Remote.Hashmap.create ctx ~slots:4096 in
  for k = 0 to 2_000 do
    Aifm.Remote.Hashmap.put h ~key:k ~value:(k * k)
  done;
  let hits = ref 0 in
  for k = 0 to 2_000 do
    match Aifm.Remote.Hashmap.get h ~key:k with
    | Some v when v = k * k -> incr hits
    | _ -> ()
  done;
  Printf.printf "remote hashmap: %d/%d lookups verified\n" !hits 2_001;
  Printf.printf
    "\nThis is the programming model TrackFM automates: the library user \n\
     had to choose data structures, sizes and iteration APIs by hand.\n"
