test/test_analysis.ml: Alcotest Alias Builder Cfg Dataflow Dominators Induction Ir List Loops Profile String Verifier
