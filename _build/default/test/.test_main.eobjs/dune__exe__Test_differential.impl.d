test/test_differential.ml: Backend Builder Clock Cost_model Interp Ir List Memstore QCheck QCheck_alcotest Tfm_opt Tfm_util Trackfm Verifier
