test/test_workloads.ml: Alcotest Analytics Clock Driver Hashmap Kmeans List Memcached Nas Printf Stream Trackfm Workloads
