test/test_shenango.ml: Alcotest Cost_model List Shenango
