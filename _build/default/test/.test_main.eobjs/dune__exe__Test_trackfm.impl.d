test/test_trackfm.ml: Aifm Alcotest Array Backend Builder Clock Cost_model Hashtbl Interp Ir List Memstore Tfm_util Trackfm Verifier
