test/test_integration.ml: Alcotest Analytics Clock Driver Hashmap Kmeans Memcached Nas Stream Tfm_opt Trackfm Workloads
