test/test_opt.ml: Alcotest Backend Builder Clock Cost_model Interp Ir List Memstore QCheck QCheck_alcotest Tfm_opt Trackfm Verifier Workloads
