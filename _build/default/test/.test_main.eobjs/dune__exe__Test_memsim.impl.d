test/test_memsim.ml: Alcotest Clock Cost_model List Memstore Net QCheck QCheck_alcotest
