test/test_aifm.ml: Aifm Alcotest Clock Cost_model Gen List Memstore Net QCheck QCheck_alcotest
