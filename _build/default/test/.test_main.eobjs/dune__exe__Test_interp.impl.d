test/test_interp.ml: Alcotest Backend Builder Clock Cost_model Interp Ir List Memstore Profile String Tracer Trackfm Workloads
