test/test_fastswap.ml: Alcotest Clock Cost_model Fastswap Gen List QCheck QCheck_alcotest
