test/test_ir.ml: Alcotest Backend Builder Cfg Clock Cost_model Interp Ir List Memstore Printer String Verifier
