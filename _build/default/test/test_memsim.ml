(* Tests for the cluster substrate: clock, memstore, cost model, network. *)

let test_clock_tick_and_counters () =
  let c = Clock.create () in
  Clock.tick c 5;
  Clock.tick c 7;
  Alcotest.(check int) "cycles" 12 (Clock.cycles c);
  Clock.count c "x" 3;
  Clock.count c "x" 4;
  Alcotest.(check int) "counter" 7 (Clock.get c "x");
  Alcotest.(check int) "absent counter" 0 (Clock.get c "y");
  Clock.reset c;
  Alcotest.(check int) "reset cycles" 0 (Clock.cycles c);
  Alcotest.(check int) "reset counter" 0 (Clock.get c "x")

let test_memstore_rw_sizes () =
  let s = Memstore.create () in
  Memstore.store s ~addr:100 ~size:1 0xAB;
  Alcotest.(check int) "byte" 0xAB (Memstore.load s ~addr:100 ~size:1);
  Memstore.store s ~addr:200 ~size:2 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Memstore.load s ~addr:200 ~size:2);
  Memstore.store s ~addr:300 ~size:4 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Memstore.load s ~addr:300 ~size:4);
  Memstore.store s ~addr:400 ~size:8 0x123456789AB;
  Alcotest.(check int) "u64" 0x123456789AB (Memstore.load s ~addr:400 ~size:8)

let test_memstore_zero_default () =
  let s = Memstore.create () in
  Alcotest.(check int) "untouched reads zero" 0
    (Memstore.load s ~addr:123_456_789 ~size:8)

let test_memstore_page_spanning () =
  let s = Memstore.create () in
  let addr = Memstore.page_size - 3 in
  Memstore.store s ~addr ~size:8 (0x1122334455667788 land max_int);
  Alcotest.(check int) "spanning rw"
    (0x1122334455667788 land max_int)
    (Memstore.load s ~addr ~size:8)

let test_memstore_floats () =
  let s = Memstore.create () in
  Memstore.store_float s ~addr:64 3.14159;
  Alcotest.(check (float 0.0)) "float roundtrip" 3.14159
    (Memstore.load_float s ~addr:64);
  let addr = Memstore.page_size - 4 in
  Memstore.store_float s ~addr (-2.5e300);
  Alcotest.(check (float 0.0)) "spanning float" (-2.5e300)
    (Memstore.load_float s ~addr)

let test_memstore_blit () =
  let s = Memstore.create () in
  for k = 0 to 15 do
    Memstore.store s ~addr:(1000 + k) ~size:1 (k * 3)
  done;
  Memstore.blit s ~src:1000 ~dst:5000 ~len:16;
  for k = 0 to 15 do
    Alcotest.(check int) "blit byte" (k * 3)
      (Memstore.load s ~addr:(5000 + k) ~size:1)
  done

let prop_memstore_roundtrip =
  QCheck.Test.make ~name:"memstore store/load roundtrip" ~count:300
    QCheck.(triple (int_range 0 1_000_000) (int_range 0 3) (int_range 0 max_int))
    (fun (addr, szi, v) ->
      let size = List.nth [ 1; 2; 4; 8 ] szi in
      let mask =
        match size with
        | 1 -> 0xFF
        | 2 -> 0xFFFF
        | 4 -> 0xFFFFFFFF
        | _ -> max_int
      in
      let s = Memstore.create () in
      Memstore.store s ~addr ~size v;
      Memstore.load s ~addr ~size = v land mask)

let test_transfer_cycles () =
  let c = Cost_model.default in
  (* 4 KiB at 25 Gb/s on a 2.4 GHz clock plus RDMA latency lands in the
     34-35 Kcycle range the paper reports for a remote page. *)
  let cycles = Cost_model.transfer_cycles c ~latency:c.rdma_latency ~bytes:4096 in
  Alcotest.(check bool) "remote page ~34Kcyc" true
    (cycles > 32_000 && cycles < 36_000)

let test_net_fetch_accounting () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let net = Net.create cost clock Net.Rdma in
  Net.fetch net ~bytes:4096;
  Net.fetch_prefetched net ~bytes:4096;
  Net.writeback net ~bytes:4096;
  Alcotest.(check int) "bytes in" 8192 (Net.bytes_in net);
  Alcotest.(check int) "bytes out" 4096 (Net.bytes_out net);
  Alcotest.(check int) "fetches" 2 (Net.fetches net);
  Alcotest.(check int) "prefetched" 1 (Clock.get clock "net.prefetched_fetches");
  Alcotest.(check int) "writebacks" 1 (Clock.get clock "net.writebacks")

let test_prefetched_fetch_cheaper () =
  let cost = Cost_model.default in
  let demand_clock = Clock.create () in
  let net = Net.create cost demand_clock Net.Tcp in
  Net.fetch net ~bytes:4096;
  let pf_clock = Clock.create () in
  let net2 = Net.create cost pf_clock Net.Tcp in
  Net.fetch_prefetched net2 ~bytes:4096;
  Alcotest.(check bool) "prefetch hides latency" true
    (Clock.cycles pf_clock * 5 < Clock.cycles demand_clock)

let test_tcp_slower_than_rdma () =
  let cost = Cost_model.default in
  let t = Clock.create () in
  Net.fetch (Net.create cost t Net.Tcp) ~bytes:4096;
  let r = Clock.create () in
  Net.fetch (Net.create cost r Net.Rdma) ~bytes:4096;
  Alcotest.(check bool) "TCP latency above RDMA" true
    (Clock.cycles t > Clock.cycles r)

let suite =
  ( "memsim",
    [
      Alcotest.test_case "clock" `Quick test_clock_tick_and_counters;
      Alcotest.test_case "memstore sizes" `Quick test_memstore_rw_sizes;
      Alcotest.test_case "memstore zero" `Quick test_memstore_zero_default;
      Alcotest.test_case "memstore spanning" `Quick test_memstore_page_spanning;
      Alcotest.test_case "memstore floats" `Quick test_memstore_floats;
      Alcotest.test_case "memstore blit" `Quick test_memstore_blit;
      Alcotest.test_case "transfer cycles" `Quick test_transfer_cycles;
      Alcotest.test_case "net accounting" `Quick test_net_fetch_accounting;
      Alcotest.test_case "prefetch cheaper" `Quick test_prefetched_fetch_cheaper;
      Alcotest.test_case "tcp vs rdma" `Quick test_tcp_slower_than_rdma;
      QCheck_alcotest.to_alcotest prop_memstore_roundtrip;
    ] )
