(* Tests for the AIFM runtime analog: pool, evacuator, pinning,
   prefetcher, region allocator, remote data structures. *)

let make_pool ?(object_size = 4096) ?(local_budget = 4 * 4096) () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let net = Net.create cost clock Net.Tcp in
  let pool = Aifm.Pool.create cost clock ~net ~object_size ~local_budget in
  (pool, clock)

let test_first_touch_no_fetch () =
  let pool, clock = make_pool () in
  Aifm.Pool.ensure_local pool 0;
  Alcotest.(check bool) "local after touch" true (Aifm.Pool.is_local pool 0);
  Alcotest.(check int) "no network fetch on first touch" 0
    (Clock.get clock "net.fetches");
  Alcotest.(check int) "materialized" 1 (Clock.get clock "aifm.materialized")

let test_budget_enforced () =
  let pool, _ = make_pool ~local_budget:(4 * 4096) () in
  for id = 0 to 9 do
    Aifm.Pool.ensure_local pool id
  done;
  Alcotest.(check bool) "within budget" true
    (Aifm.Pool.local_used pool <= Aifm.Pool.local_budget pool);
  Alcotest.(check int) "4 objects local" 4 (Aifm.Pool.local_count pool)

let test_dirty_eviction_writeback_then_fetch () =
  let pool, clock = make_pool ~local_budget:4096 () in
  Aifm.Pool.ensure_local pool 0;
  Aifm.Pool.mark_dirty pool 0;
  (* Force 0 out by bringing in another object (budget is one object). *)
  Aifm.Pool.ensure_local pool 1;
  Alcotest.(check bool) "evicted" false (Aifm.Pool.is_local pool 0);
  Alcotest.(check int) "writeback happened" 1
    (Clock.get clock "aifm.writebacks");
  (* Re-touching it now needs a real fetch: the data lives remotely. *)
  Aifm.Pool.ensure_local pool 0;
  Alcotest.(check int) "demand fetch" 1 (Clock.get clock "aifm.demand_fetches")

let test_clean_eviction_no_writeback () =
  let pool, clock = make_pool ~local_budget:4096 () in
  Aifm.Pool.ensure_local pool 0;
  (* never dirtied *)
  Aifm.Pool.ensure_local pool 1;
  Alcotest.(check int) "no writeback" 0 (Clock.get clock "aifm.writebacks");
  (* Re-touch: still no remote copy, so it materializes again. *)
  Aifm.Pool.ensure_local pool 0;
  Alcotest.(check int) "no fetch either" 0 (Clock.get clock "net.fetches")

let test_pinned_never_evicted () =
  let pool, _ = make_pool ~local_budget:(2 * 4096) () in
  Aifm.Pool.ensure_local pool 0;
  Aifm.Pool.pin pool 0;
  for id = 1 to 8 do
    Aifm.Pool.ensure_local pool id
  done;
  Alcotest.(check bool) "pinned object survived pressure" true
    (Aifm.Pool.is_local pool 0);
  Aifm.Pool.unpin pool 0;
  for id = 9 to 12 do
    Aifm.Pool.ensure_local pool id
  done;
  Alcotest.(check bool) "unpinned object can now be evicted" false
    (Aifm.Pool.is_local pool 0)

let test_out_of_local_memory () =
  let pool, _ = make_pool ~local_budget:4096 () in
  Aifm.Pool.ensure_local pool 0;
  Aifm.Pool.pin pool 0;
  Alcotest.(check bool) "raises when all pinned" true
    (try
       Aifm.Pool.ensure_local pool 1;
       false
     with Aifm.Pool.Out_of_local_memory -> true)

let test_pin_counts_nested () =
  let pool, _ = make_pool () in
  Aifm.Pool.ensure_local pool 3;
  Aifm.Pool.pin pool 3;
  Aifm.Pool.pin pool 3;
  Aifm.Pool.unpin pool 3;
  Alcotest.(check bool) "still pinned after one unpin" true
    (Aifm.Pool.pinned pool 3);
  Aifm.Pool.unpin pool 3;
  Alcotest.(check bool) "fully unpinned" false (Aifm.Pool.pinned pool 3);
  Alcotest.(check bool) "unbalanced unpin rejected" true
    (try
       Aifm.Pool.unpin pool 3;
       false
     with Invalid_argument _ -> true)

let test_prefetched_fetch_cost () =
  let pool, clock = make_pool ~local_budget:(64 * 4096) () in
  (* Create remote copies: touch, dirty, evict. *)
  Aifm.Pool.ensure_local pool 0;
  Aifm.Pool.mark_dirty pool 0;
  while Aifm.Pool.is_local pool 0 do
    ignore (Aifm.Pool.evict_one pool)
  done;
  Clock.reset clock;
  Aifm.Pool.mark_prefetched pool 0;
  Aifm.Pool.ensure_local pool 0;
  Alcotest.(check int) "counted as prefetched" 1
    (Clock.get clock "net.prefetched_fetches")

let test_prefetch_ignored_without_remote_copy () =
  let pool, clock = make_pool () in
  Aifm.Pool.mark_prefetched pool 7;
  Aifm.Pool.ensure_local pool 7;
  Alcotest.(check int) "materialized, not fetched" 0
    (Clock.get clock "net.fetches")

let test_clock_second_chance () =
  let pool, _ = make_pool ~local_budget:(2 * 4096) () in
  Aifm.Pool.ensure_local pool 0;
  Aifm.Pool.ensure_local pool 1;
  (* Touch 0 again: its hot bit gives it a second chance over 1. *)
  Aifm.Pool.ensure_local pool 0;
  Aifm.Pool.ensure_local pool 2;
  (* 0 was re-touched after 1, so 1 should have gone first. Both started
     hot, so the CLOCK strips hot bits one round, then evicts 1. *)
  Alcotest.(check int) "two local" 2 (Aifm.Pool.local_count pool);
  Alcotest.(check bool) "recently touched object survives" true
    (Aifm.Pool.is_local pool 2)

let prop_pool_budget_invariant =
  QCheck.Test.make ~name:"pool never exceeds budget" ~count:50
    QCheck.(pair (int_range 1 16) (list_of_size (Gen.return 200) (int_range 0 63)))
    (fun (budget_objs, touches) ->
      let pool, _ = make_pool ~local_budget:(budget_objs * 4096) () in
      List.iter
        (fun id ->
          Aifm.Pool.ensure_local pool id;
          if id mod 3 = 0 then Aifm.Pool.mark_dirty pool id)
        touches;
      Aifm.Pool.local_used pool <= budget_objs * 4096)

(* -- region allocator -- *)

let test_alloc_alignment_and_reuse () =
  let a = Aifm.Region_alloc.create ~base:0 in
  let p1 = Aifm.Region_alloc.alloc a 100 in
  Alcotest.(check int) "16-aligned" 0 (p1 land 15);
  Alcotest.(check int) "size class pow2" 128 (Aifm.Region_alloc.size_of a p1);
  Alcotest.(check int) "requested" 100 (Aifm.Region_alloc.requested_size_of a p1);
  Aifm.Region_alloc.free a p1;
  let p2 = Aifm.Region_alloc.alloc a 90 in
  Alcotest.(check int) "freed block reused within class" p1 p2

let test_alloc_double_free () =
  let a = Aifm.Region_alloc.create ~base:0 in
  let p = Aifm.Region_alloc.alloc a 32 in
  Aifm.Region_alloc.free a p;
  Alcotest.(check bool) "double free rejected" true
    (try
       Aifm.Region_alloc.free a p;
       false
     with Invalid_argument _ -> true)

let test_alloc_distinct_live () =
  let a = Aifm.Region_alloc.create ~base:4096 in
  let ps = List.init 50 (fun i -> Aifm.Region_alloc.alloc a (16 + i)) in
  let sorted = List.sort_uniq compare ps in
  Alcotest.(check int) "all distinct" 50 (List.length sorted);
  Alcotest.(check bool) "above base" true (List.for_all (fun p -> p >= 4096) ps)

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:50
    QCheck.(list_of_size (Gen.return 40) (int_range 1 9000))
    (fun sizes ->
      let a = Aifm.Region_alloc.create ~base:0 in
      let blocks = List.map (fun n -> (Aifm.Region_alloc.alloc a n, n)) sizes in
      let ranges =
        List.map (fun (p, _) -> (p, p + Aifm.Region_alloc.size_of a p)) blocks
      in
      let sorted = List.sort compare ranges in
      let rec ok = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && ok rest
        | _ -> true
      in
      ok sorted)

(* -- remote data structures -- *)

let make_ctx ?(object_size = 256) ?(local_budget = 64 * 256) () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  let store = Memstore.create () in
  (Aifm.Remote.create_ctx cost clock store ~object_size ~local_budget, clock)

let test_remote_array_rw () =
  let ctx, _ = make_ctx () in
  let a = Aifm.Remote.Array.create ctx ~elem_size:8 ~len:1000 in
  for i = 0 to 999 do
    Aifm.Remote.Array.set a i (i * 3)
  done;
  for i = 0 to 999 do
    Alcotest.(check int) "readback" (i * 3) (Aifm.Remote.Array.get a i)
  done

let test_remote_array_survives_eviction () =
  (* Budget far below the array: every element must still read back. *)
  let ctx, clock = make_ctx ~local_budget:(4 * 256) () in
  let a = Aifm.Remote.Array.create ctx ~elem_size:8 ~len:2000 in
  for i = 0 to 1999 do
    Aifm.Remote.Array.set a i (i + 7)
  done;
  Alcotest.(check bool) "writebacks happened" true
    (Clock.get clock "aifm.writebacks" > 0);
  let ok = ref true in
  for i = 0 to 1999 do
    if Aifm.Remote.Array.get a i <> i + 7 then ok := false
  done;
  Alcotest.(check bool) "all values survive remote round trips" true !ok;
  Alcotest.(check bool) "fetches happened" true
    (Clock.get clock "net.fetches" > 0)

let test_remote_array_floats () =
  let ctx, _ = make_ctx () in
  let a = Aifm.Remote.Array.create ctx ~elem_size:8 ~len:100 in
  Aifm.Remote.Array.set_float a 5 2.75;
  Alcotest.(check (float 0.0)) "float" 2.75 (Aifm.Remote.Array.get_float a 5)

let test_remote_array_bounds () =
  let ctx, _ = make_ctx () in
  let a = Aifm.Remote.Array.create ctx ~elem_size:8 ~len:10 in
  Alcotest.(check bool) "oob rejected" true
    (try
       ignore (Aifm.Remote.Array.get a 10);
       false
     with Invalid_argument _ -> true)

let test_remote_array_iterator_prefetches () =
  let ctx, clock = make_ctx ~object_size:256 ~local_budget:(8 * 256) () in
  let a = Aifm.Remote.Array.create ctx ~elem_size:8 ~len:4000 in
  for i = 0 to 3999 do
    Aifm.Remote.Array.set a i i
  done;
  Clock.reset clock;
  let sum = ref 0 in
  Aifm.Remote.Array.iter_prefetched a (fun _ v -> sum := !sum + v);
  Alcotest.(check int) "sum" (3999 * 4000 / 2) !sum;
  Alcotest.(check bool) "most fetches were prefetched" true
    (Clock.get clock "net.prefetched_fetches"
    > Clock.get clock "aifm.demand_fetches")

let test_remote_hashmap () =
  let ctx, _ = make_ctx ~local_budget:(128 * 256) () in
  let h = Aifm.Remote.Hashmap.create ctx ~slots:256 in
  for k = 0 to 99 do
    Aifm.Remote.Hashmap.put h ~key:k ~value:(k * k)
  done;
  Alcotest.(check int) "size" 100 (Aifm.Remote.Hashmap.size h);
  for k = 0 to 99 do
    Alcotest.(check (option int)) "get" (Some (k * k))
      (Aifm.Remote.Hashmap.get h ~key:k)
  done;
  Alcotest.(check (option int)) "absent" None
    (Aifm.Remote.Hashmap.get h ~key:1234);
  Aifm.Remote.Hashmap.put h ~key:7 ~value:999;
  Alcotest.(check (option int)) "overwrite" (Some 999)
    (Aifm.Remote.Hashmap.get h ~key:7);
  Alcotest.(check int) "size unchanged by overwrite" 100
    (Aifm.Remote.Hashmap.size h)

let test_stride_prefetcher_learns () =
  let pool, clock = make_pool ~local_budget:(128 * 4096) () in
  (* Build remote copies for ids 0..63. *)
  for id = 0 to 63 do
    Aifm.Pool.ensure_local pool id;
    Aifm.Pool.mark_dirty pool id
  done;
  for _ = 0 to 200 do
    ignore (Aifm.Pool.evict_one pool)
  done;
  Clock.reset clock;
  let pf = Aifm.Prefetcher.create pool ~depth:8 () in
  (* Walk ids sequentially; after the stride is learned, later accesses
     must be covered by prefetches. *)
  for id = 0 to 63 do
    Aifm.Prefetcher.access pf id;
    Aifm.Pool.ensure_local pool id
  done;
  Alcotest.(check bool) "prefetched majority" true
    (Clock.get clock "net.prefetched_fetches" > 40)


let test_remote_vector () =
  let ctx, _ = make_ctx ~local_budget:(64 * 256) () in
  let v = Aifm.Remote.Vector.create ctx ~elem_size:8 in
  for i = 0 to 499 do
    Aifm.Remote.Vector.push v (i * 2)
  done;
  Alcotest.(check int) "length" 500 (Aifm.Remote.Vector.length v);
  Alcotest.(check bool) "capacity grew" true
    (Aifm.Remote.Vector.capacity v >= 500);
  for i = 0 to 499 do
    Alcotest.(check int) "get" (i * 2) (Aifm.Remote.Vector.get v i)
  done;
  Aifm.Remote.Vector.set v 10 999;
  Alcotest.(check int) "set" 999 (Aifm.Remote.Vector.get v 10);
  let sum = ref 0 in
  Aifm.Remote.Vector.iter_prefetched v (fun _ x -> sum := !sum + x);
  Alcotest.(check int) "iter sum" (499 * 500 + 999 - 20) !sum;
  Alcotest.(check bool) "oob rejected" true
    (try
       ignore (Aifm.Remote.Vector.get v 500);
       false
     with Invalid_argument _ -> true)

let test_remote_vector_survives_eviction () =
  let ctx, clock = make_ctx ~local_budget:(4 * 256) () in
  let v = Aifm.Remote.Vector.create ctx ~elem_size:8 in
  for i = 0 to 2000 do
    Aifm.Remote.Vector.push v (i * 7)
  done;
  Alcotest.(check bool) "data crossed the network" true
    (Clock.get clock "net.fetches" > 0);
  let ok = ref true in
  for i = 0 to 2000 do
    if Aifm.Remote.Vector.get v i <> i * 7 then ok := false
  done;
  Alcotest.(check bool) "values survive growth + eviction" true !ok

let test_remote_list () =
  let ctx, _ = make_ctx ~local_budget:(16 * 256) () in
  let l = Aifm.Remote.List.create ctx in
  for i = 1 to 100 do
    Aifm.Remote.List.push_front l i
  done;
  Alcotest.(check int) "length" 100 (Aifm.Remote.List.length l);
  (* pushed 1..100 at front, so the list reads 100..1 *)
  Alcotest.(check (option int)) "nth 0" (Some 100) (Aifm.Remote.List.nth l 0);
  Alcotest.(check (option int)) "nth last" (Some 1) (Aifm.Remote.List.nth l 99);
  Alcotest.(check (option int)) "nth oob" None (Aifm.Remote.List.nth l 100);
  Alcotest.(check int) "fold sum" 5050 (Aifm.Remote.List.fold l ~init:0 ( + ))

let test_remote_list_pointer_chase_costs () =
  (* Traversal localizes node by node: under pressure this pays a fetch
     per cold node, the pathology the paper uses to motivate per-node
     object sizes. *)
  let ctx, clock = make_ctx ~object_size:64 ~local_budget:(8 * 64) () in
  let l = Aifm.Remote.List.create ctx in
  for i = 1 to 200 do
    Aifm.Remote.List.push_front l i
  done;
  Clock.reset clock;
  ignore (Aifm.Remote.List.fold l ~init:0 ( + ));
  Alcotest.(check bool) "mostly demand fetches (no stride to learn)" true
    (Clock.get clock "aifm.demand_fetches" > 20)

let test_remote_queue () =
  let ctx, _ = make_ctx ~local_budget:(64 * 256) () in
  let q = Aifm.Remote.Queue.create ctx ~capacity:8 in
  for i = 1 to 8 do
    Alcotest.(check bool) "push ok" true (Aifm.Remote.Queue.push q i)
  done;
  Alcotest.(check bool) "full" true (Aifm.Remote.Queue.is_full q);
  Alcotest.(check bool) "push on full fails" false (Aifm.Remote.Queue.push q 9);
  Alcotest.(check (option int)) "fifo" (Some 1) (Aifm.Remote.Queue.pop q);
  Alcotest.(check bool) "push after pop" true (Aifm.Remote.Queue.push q 9);
  (* drain: 2..9 *)
  let drained = ref [] in
  let rec drain () =
    match Aifm.Remote.Queue.pop q with
    | Some v ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "order" [ 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !drained);
  Alcotest.(check int) "empty" 0 (Aifm.Remote.Queue.length q)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "aifm",
    [
      Alcotest.test_case "first touch no fetch" `Quick test_first_touch_no_fetch;
      Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
      Alcotest.test_case "dirty eviction" `Quick
        test_dirty_eviction_writeback_then_fetch;
      Alcotest.test_case "clean eviction" `Quick test_clean_eviction_no_writeback;
      Alcotest.test_case "pinned never evicted" `Quick test_pinned_never_evicted;
      Alcotest.test_case "out of local memory" `Quick test_out_of_local_memory;
      Alcotest.test_case "nested pins" `Quick test_pin_counts_nested;
      Alcotest.test_case "prefetched fetch" `Quick test_prefetched_fetch_cost;
      Alcotest.test_case "prefetch w/o remote copy" `Quick
        test_prefetch_ignored_without_remote_copy;
      Alcotest.test_case "second chance" `Quick test_clock_second_chance;
      Alcotest.test_case "alloc align/reuse" `Quick test_alloc_alignment_and_reuse;
      Alcotest.test_case "alloc double free" `Quick test_alloc_double_free;
      Alcotest.test_case "alloc distinct" `Quick test_alloc_distinct_live;
      Alcotest.test_case "remote array rw" `Quick test_remote_array_rw;
      Alcotest.test_case "remote array eviction" `Quick
        test_remote_array_survives_eviction;
      Alcotest.test_case "remote array floats" `Quick test_remote_array_floats;
      Alcotest.test_case "remote array bounds" `Quick test_remote_array_bounds;
      Alcotest.test_case "iterator prefetches" `Quick
        test_remote_array_iterator_prefetches;
      Alcotest.test_case "remote hashmap" `Quick test_remote_hashmap;
      Alcotest.test_case "remote vector" `Quick test_remote_vector;
      Alcotest.test_case "remote vector eviction" `Quick
        test_remote_vector_survives_eviction;
      Alcotest.test_case "remote list" `Quick test_remote_list;
      Alcotest.test_case "remote list pointer chase" `Quick
        test_remote_list_pointer_chase_costs;
      Alcotest.test_case "remote queue" `Quick test_remote_queue;
      Alcotest.test_case "prefetcher learns" `Quick test_stride_prefetcher_learns;
      q prop_pool_budget_invariant;
      q prop_alloc_no_overlap;
    ] )
