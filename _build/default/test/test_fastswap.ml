(* Tests for the kernel-paging baseline. *)

let make ?(readahead = 0) ?(local_budget = 4 * 4096) () =
  let cost = Cost_model.default in
  let clock = Clock.create () in
  (Fastswap.Swap.create ~readahead cost clock ~local_budget, clock)

let test_first_touch_minor_fault () =
  let swap, clock = make () in
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:false;
  Alcotest.(check int) "minor fault" 1 (Clock.get clock "fastswap.minor_faults");
  Alcotest.(check int) "no major" 0 (Clock.get clock "fastswap.major_faults");
  Alcotest.(check bool) "present" true (Fastswap.Swap.is_present swap ~addr:0)

let test_present_access_free () =
  let swap, clock = make () in
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:false;
  let before = Clock.cycles clock in
  Fastswap.Swap.access swap ~addr:8 ~size:8 ~write:false;
  Alcotest.(check int) "no extra cycles on present page" before
    (Clock.cycles clock)

let page = Fastswap.Swap.page_size

let test_reclaim_and_major_fault () =
  let swap, clock = make ~local_budget:(2 * page) () in
  (* Dirty two pages, then touch more to force reclaim. *)
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:true;
  Fastswap.Swap.access swap ~addr:page ~size:8 ~write:true;
  Fastswap.Swap.access swap ~addr:(2 * page) ~size:8 ~write:false;
  Fastswap.Swap.access swap ~addr:(3 * page) ~size:8 ~write:false;
  Alcotest.(check bool) "budget enforced" true
    (Fastswap.Swap.present_pages swap <= 2);
  Alcotest.(check bool) "dirty eviction wrote back" true
    (Clock.get clock "fastswap.writebacks" > 0);
  (* Page 0 was swapped out dirty: next touch is a major fault. *)
  Clock.reset clock;
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:false;
  Alcotest.(check int) "major fault" 1 (Clock.get clock "fastswap.major_faults");
  Alcotest.(check bool) "page transfer charged" true
    (Clock.get clock "net.bytes_in" = page)

let test_major_fault_cost_calibration () =
  (* Table 2: a remote fault costs ~34 Kcycles (plus a cheap clean-page
     reclaim to make room). *)
  let swap, clock = make ~local_budget:(2 * page) () in
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:true;
  Fastswap.Swap.access swap ~addr:page ~size:8 ~write:false;
  Fastswap.Swap.access swap ~addr:(2 * page) ~size:8 ~write:false;
  (* page 0 is now swapped out (written back on reclaim) *)
  Alcotest.(check bool) "page 0 out" false (Fastswap.Swap.is_present swap ~addr:0);
  Clock.reset clock;
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:false;
  let cycles = Clock.cycles clock in
  Alcotest.(check bool) "fault in 30-40Kcyc band" true
    (cycles > 30_000 && cycles < 40_000)

let test_page_spanning_access () =
  let swap, clock = make () in
  Fastswap.Swap.access swap ~addr:(page - 4) ~size:8 ~write:false;
  Alcotest.(check int) "two pages faulted" 2
    (Clock.get clock "fastswap.minor_faults")

let test_clean_page_dropped_silently () =
  let swap, clock = make ~local_budget:page () in
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:false;
  Fastswap.Swap.access swap ~addr:page ~size:8 ~write:false;
  Alcotest.(check int) "no writeback for clean page" 0
    (Clock.get clock "fastswap.writebacks")

let test_readahead () =
  let swap, clock = make ~readahead:4 ~local_budget:(32 * page) () in
  (* Create swapped-out neighbours. *)
  for k = 0 to 15 do
    Fastswap.Swap.access swap ~addr:(k * page) ~size:8 ~write:true
  done;
  let swap2, clock2 = (swap, clock) in
  ignore swap2;
  (* force everything out by exceeding budget: touch 32 fresh pages *)
  for k = 16 to 60 do
    Fastswap.Swap.access swap ~addr:(k * page) ~size:8 ~write:false
  done;
  Clock.reset clock2;
  Fastswap.Swap.access swap ~addr:0 ~size:8 ~write:false;
  Alcotest.(check int) "one major" 1 (Clock.get clock "fastswap.major_faults");
  Alcotest.(check int) "readahead pulled neighbours" 4
    (Clock.get clock "fastswap.readahead_pages");
  (* Readahead pages are mapped cold, so under pressure the earliest ones
     can be reclaimed again before use (as in a real kernel); at least
     the most recent neighbours must still be present and free to touch. *)
  Alcotest.(check bool) "recent neighbour present" true
    (Fastswap.Swap.is_present swap ~addr:(4 * page));
  let c = Clock.cycles clock in
  Fastswap.Swap.access swap ~addr:(4 * page) ~size:8 ~write:false;
  Alcotest.(check int) "neighbour access free" c (Clock.cycles clock)

let prop_budget_invariant =
  QCheck.Test.make ~name:"fastswap never exceeds budget" ~count:50
    QCheck.(list_of_size (Gen.return 150) (pair (int_range 0 63) bool))
    (fun accesses ->
      let swap, _ = make ~local_budget:(8 * page) () in
      List.iter
        (fun (p, write) ->
          Fastswap.Swap.access swap ~addr:(p * page) ~size:8 ~write)
        accesses;
      Fastswap.Swap.present_pages swap <= 8)

let prop_swapped_data_refaults =
  QCheck.Test.make ~name:"major fault count matches reuse after eviction"
    ~count:30
    QCheck.(int_range 2 6)
    (fun budget_pages ->
      let swap, clock = make ~local_budget:(budget_pages * page) () in
      let n = 3 * budget_pages in
      (* Dirty n pages sequentially, then rescan: everything evicted by
         the scan must major-fault on the second pass. *)
      for k = 0 to n - 1 do
        Fastswap.Swap.access swap ~addr:(k * page) ~size:8 ~write:true
      done;
      Clock.reset clock;
      for k = 0 to n - 1 do
        Fastswap.Swap.access swap ~addr:(k * page) ~size:8 ~write:false
      done;
      Clock.get clock "fastswap.major_faults" >= n - budget_pages)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "fastswap",
    [
      Alcotest.test_case "first touch minor" `Quick test_first_touch_minor_fault;
      Alcotest.test_case "present access free" `Quick test_present_access_free;
      Alcotest.test_case "reclaim + major" `Quick test_reclaim_and_major_fault;
      Alcotest.test_case "fault cost calibration" `Quick
        test_major_fault_cost_calibration;
      Alcotest.test_case "page spanning" `Quick test_page_spanning_access;
      Alcotest.test_case "clean drop" `Quick test_clean_page_dropped_silently;
      Alcotest.test_case "readahead" `Quick test_readahead;
      q prop_budget_invariant;
      q prop_swapped_data_refaults;
    ] )
