(* trackfm_cli: compile-and-run any bundled workload under a chosen
   far-memory system and print its statistics.

   Examples:
     dune exec bin/trackfm_cli.exe -- run -w stream-sum -s trackfm -m 25
     dune exec bin/trackfm_cli.exe -- run -w memcached -s fastswap -m 10
     dune exec bin/trackfm_cli.exe -- list *)

open Workloads
open Cmdliner

type workload = {
  wname : string;
  describe : string;
  build : unit -> Ir.modul;
  blobs : (int * Bytes.t) list;
  working_set : int;
  expected : int;
}

let workloads () =
  let stream kernel =
    let n = 200_000 in
    {
      wname = "stream-" ^ Stream.kernel_name kernel;
      describe = "STREAM " ^ Stream.kernel_name kernel ^ " kernel";
      build = (fun () -> Stream.build ~n ~kernel ());
      blobs = [];
      working_set = Stream.working_set_bytes ~n ~kernel ();
      expected = Stream.checksum ~n ~kernel ();
    }
  in
  let kme =
    let p = Kmeans.default_params ~n:15_000 in
    {
      wname = "kmeans";
      describe = "k-means clustering (dimension-major)";
      build = (fun () -> Kmeans.build p ());
      blobs = [];
      working_set = Kmeans.working_set_bytes p;
      expected = Kmeans.checksum p;
    }
  in
  let hm =
    let p = Hashmap.default_params ~keys:80_000 ~lookups:100_000 in
    {
      wname = "hashmap";
      describe = "Zipfian hashmap lookups";
      build = (fun () -> Hashmap.build p ());
      blobs = [ (0, Hashmap.trace_blob p) ];
      working_set = Hashmap.working_set_bytes p;
      expected = Hashmap.checksum p;
    }
  in
  let mc =
    let p = Memcached.default_params ~keys:80_000 ~gets:50_000 ~skew:1.1 in
    {
      wname = "memcached";
      describe = "memcached-style KV store, Zipf 1.1";
      build = (fun () -> Memcached.build p ());
      blobs = [ (0, Memcached.trace_blob p) ];
      working_set = Memcached.working_set_bytes p;
      expected = Memcached.checksum p;
    }
  in
  let an =
    let p = Analytics.default_params ~rows:150_000 in
    {
      wname = "analytics";
      describe = "NYC-taxi-style dataframe queries";
      build = (fun () -> Analytics.build p ());
      blobs = [];
      working_set = Analytics.working_set_bytes p;
      expected = Analytics.checksum p;
    }
  in
  let nas kernel =
    let p = { Nas.kernel; scale = 1 } in
    {
      wname = "nas-" ^ Nas.kernel_name kernel;
      describe =
        "NAS " ^ String.uppercase_ascii (Nas.kernel_name kernel) ^ " kernel";
      build = (fun () -> Nas.build p ());
      blobs = [];
      working_set = Nas.working_set_bytes p;
      expected = Nas.checksum p;
    }
  in
  List.map stream [ Stream.Sum; Stream.Copy; Stream.Scale; Stream.Triad ]
  @ [ kme; hm; mc; an ]
  @ List.map nas Nas.all_kernels

let find_workload name =
  match List.find_opt (fun w -> w.wname = name) (workloads ()) with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %s; try: %s" name
           (String.concat ", " (List.map (fun w -> w.wname) (workloads ()))))

let print_outcome w (o : Driver.outcome) =
  Printf.printf "checksum: %d (%s)\n" o.Driver.ret
    (if o.Driver.ret = w.expected then "correct" else "WRONG!");
  Printf.printf "cycles:   %s (%.2f ms at 2.4 GHz)\n"
    (Tfm_util.Units.cycles_to_string o.Driver.cycles)
    (float_of_int o.Driver.cycles /. 2.4e6);
  Printf.printf "instrs:   %d\n" o.Driver.instrs;
  let counters = Clock.counters o.Driver.clock in
  if counters <> [] then begin
    Printf.printf "counters:\n";
    List.iter (fun (k, v) -> Printf.printf "  %-28s %d\n" k v) counters
  end

let run_cmd workload_name system local_pct object_size chunk prefetch o1 =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      let budget = max (16 * object_size) (w.working_set * local_pct / 100) in
      Printf.printf
        "workload %s (%s), working set %s, local budget %s (%d%%), system %s\n\n"
        w.wname w.describe
        (Tfm_util.Units.bytes_to_string w.working_set)
        (Tfm_util.Units.bytes_to_string budget)
        local_pct system;
      let build =
        if o1 then fun () ->
          let m = w.build () in
          ignore (Tfm_opt.O1.run m);
          m
        else w.build
      in
      let chunk_mode =
        match chunk with "off" -> `Off | "all" -> `All | _ -> `Gated
      in
      (match system with
      | "local" -> print_outcome w (Driver.run_local ~blobs:w.blobs build)
      | "fastswap" ->
          print_outcome w
            (Driver.run_fastswap ~blobs:w.blobs ~local_budget:budget build)
      | "trackfm" ->
          let opts =
            {
              Driver.object_size;
              local_budget = budget;
              chunk_mode;
              prefetch;
              use_state_table = true;
              profile_gate = true;
              size_classes = [];
            }
          in
          let o, report = Driver.run_trackfm ~blobs:w.blobs build opts in
          Printf.printf
            "compile: %d guards, %d chunk sites, growth %.2fx, %.1f ms\n\n"
            (report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_loads
            + report.Trackfm.Pipeline.guards.Trackfm.Guard_pass.guarded_stores)
            report.Trackfm.Pipeline.chunks.Trackfm.Chunk_pass.chunk_sites
            (Trackfm.Pipeline.code_growth report)
            (report.Trackfm.Pipeline.compile_time_s *. 1e3);
          print_outcome w o
      | other ->
          Printf.eprintf "unknown system %s (local|trackfm|fastswap)\n" other);
      0

let sweep_cmd workload_name object_size =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      Printf.printf "sweeping %s (working set %s), object size %dB\n\n"
        w.wname
        (Tfm_util.Units.bytes_to_string w.working_set)
        object_size;
      let t =
        Tfm_util.Table.create
          ~title:"slowdown vs all-local, by local memory"
          ~columns:[ "local mem %"; "TrackFM"; "Fastswap" ]
      in
      let lo = Driver.run_local ~blobs:w.blobs w.build in
      let tfm_pts = ref [] and fs_pts = ref [] in
      List.iter
        (fun pct ->
          let budget = max (16 * 4096) (w.working_set * pct / 100) in
          let opts =
            {
              Driver.object_size;
              local_budget = budget;
              chunk_mode = `Gated;
              prefetch = true;
              use_state_table = true;
              profile_gate = true;
              size_classes = [];
            }
          in
          let tfm, _ = Driver.run_trackfm ~blobs:w.blobs w.build opts in
          let fs =
            Driver.run_fastswap ~blobs:w.blobs ~local_budget:budget w.build
          in
          assert (tfm.Driver.ret = w.expected && fs.Driver.ret = w.expected);
          let sl c = float_of_int c /. float_of_int lo.Driver.cycles in
          tfm_pts := (float_of_int pct, sl tfm.Driver.cycles) :: !tfm_pts;
          fs_pts := (float_of_int pct, sl fs.Driver.cycles) :: !fs_pts;
          Tfm_util.Table.add_rowf t "%d | %.2f | %.2f" pct
            (sl tfm.Driver.cycles) (sl fs.Driver.cycles))
        [ 10; 25; 50; 75; 100 ];
      Tfm_util.Table.print t;
      Tfm_util.Ascii_plot.print ~x_label:"local mem %"
        ~title:(w.wname ^ ": slowdown vs all-local")
        [
          { Tfm_util.Ascii_plot.label = "TrackFM"; points = !tfm_pts };
          { label = "Fastswap"; points = !fs_pts };
        ];
      0

let autotune_cmd workload_name local_pct =
  match find_workload workload_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok w ->
      let budget = max 65536 (w.working_set * local_pct / 100) in
      Printf.printf
        "autotuning object size for %s at %d%% local memory (Section 3.2's \
         exhaustive recompile-and-run search)\n\n"
        w.wname local_pct;
      let best, results =
        Driver.autotune_object_size ~blobs:w.blobs w.build ~local_budget:budget
      in
      List.iter
        (fun (osz, cycles) ->
          Printf.printf "  %5dB -> %s%s\n" osz
            (Tfm_util.Units.cycles_to_string cycles)
            (if osz = best then "   <- chosen" else ""))
        results;
      0

let list_cmd () =
  List.iter
    (fun w ->
      Printf.printf "%-14s %-45s %s\n" w.wname w.describe
        (Tfm_util.Units.bytes_to_string w.working_set))
    (workloads ());
  0

(* -- cmdliner wiring -- *)

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to run (see list).")

let system_arg =
  Arg.(
    value & opt string "trackfm"
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"Memory system: local, trackfm or fastswap.")

let local_mem_arg =
  Arg.(
    value & opt int 25
    & info [ "m"; "local-mem" ] ~docv:"PCT"
        ~doc:"Local memory as a percentage of the working set.")

let object_size_arg =
  Arg.(
    value & opt int 4096
    & info [ "o"; "object-size" ] ~docv:"BYTES"
        ~doc:"TrackFM/AIFM object size (power of two, 64-65536).")

let chunk_arg =
  Arg.(
    value & opt string "gated"
    & info [ "c"; "chunk" ] ~docv:"MODE"
        ~doc:"Loop chunking mode: off, all, or gated (profiled cost model).")

let prefetch_arg =
  Arg.(
    value & flag
    & info [ "no-prefetch" ] ~doc:"Disable compiler-directed prefetching.")

let o1_arg =
  Arg.(
    value & flag
    & info [ "o1" ] ~doc:"Run the O1 pre-optimization pipeline first.")

let run_term =
  Term.(
    const (fun w s m o c np o1 -> run_cmd w s m o c (not np) o1)
    $ workload_arg $ system_arg $ local_mem_arg $ object_size_arg $ chunk_arg
    $ prefetch_arg $ o1_arg)

let run_info = Cmd.info "run" ~doc:"Compile and run a workload"
let list_info = Cmd.info "list" ~doc:"List available workloads"

let sweep_term =
  Term.(const sweep_cmd $ workload_arg $ object_size_arg)

let sweep_info =
  Cmd.info "sweep"
    ~doc:"Sweep local memory and chart TrackFM vs Fastswap slowdowns"

let autotune_term = Term.(const autotune_cmd $ workload_arg $ local_mem_arg)

let autotune_info =
  Cmd.info "autotune" ~doc:"Pick the best TrackFM object size by search"

let main =
  Cmd.group
    (Cmd.info "trackfm_cli" ~version:"1.0"
       ~doc:"TrackFM far-memory reproduction driver")
    [
      Cmd.v run_info run_term;
      Cmd.v list_info Term.(const list_cmd $ const ());
      Cmd.v sweep_info sweep_term;
      Cmd.v autotune_info autotune_term;
    ]

let () = exit (Cmd.eval' main)
