(** Simulation cost constants.

    Absolute primitive costs are inputs to this reproduction, not outputs:
    they are calibrated to the medians the paper measured on CloudLab x170
    nodes (Tables 1 and 2). Everything downstream — figure shapes, who
    wins, crossover points — is then produced by the simulation.

    All costs are in CPU cycles at the paper's 2.40 GHz clock. *)

type t = {
  local_access : int;
      (** effective (throughput) cost of an unguarded local load/store;
          the paper's Table 1 quotes the 36-cycle *latency* of one
          access, but pipelined loops sustain far more than one access
          per 36 cycles, so the simulation charges an effective cost *)
  fast_guard_read : int;   (** extra cycles for a fast-path read guard *)
  fast_guard_write : int;
  slow_guard_read_local : int;
      (** slow-path guard when the object is already local (runtime call) *)
  slow_guard_write_local : int;
  custody_check : int;     (** non-TrackFM pointer: bit test + branch *)
  boundary_check : int;    (** loop-chunking object-boundary check (3 instrs) *)
  locality_guard : int;
      (** loop-chunking per-chunk runtime call that pins the object *)
  cache_miss_penalty : int;
      (** added to a guard whose state-table entry misses the data cache *)
  metadata_indirection : int;
      (** extra dependent load when the object state table is disabled
          (ablation of the paper's Section 3.2 optimization) *)
  fastswap_fault_local : int;
      (** kernel fault with the page present locally (swap-cache hit) *)
  fastswap_fault_base : int;
      (** kernel fault software overhead added on top of the remote fetch
          (mapping, cgroups reclaim) *)
  evict_object : int;      (** evacuator bookkeeping per evicted object *)
  evict_page : int;        (** kernel reclaim bookkeeping per evicted page *)
  tcp_latency : int;       (** AIFM/Shenango TCP round-trip fixed cost *)
  rdma_latency : int;      (** Fastswap one-sided RDMA fixed cost *)
  bytes_per_kcycle : int;
      (** wire bandwidth: bytes moved per 1000 cycles (25 Gb/s at 2.4 GHz
          is ~1302 bytes/Kcyc) *)
  prefetch_hit : int;
      (** cost of an access whose object was brought in by a completed
          prefetch: the latency is overlapped, only pipeline overhead and
          a bandwidth share remain *)
}

val default : t
(** Calibration used across the benchmark harness. *)

val transfer_cycles : t -> latency:int -> bytes:int -> int
(** [latency + bytes * per-byte cost]. *)
