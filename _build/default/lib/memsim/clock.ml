type t = {
  mutable cycles : int;
  table : (string, int ref) Hashtbl.t;
}

let create () = { cycles = 0; table = Hashtbl.create 16 }

let tick t n =
  assert (n >= 0);
  t.cycles <- t.cycles + n

let cycles t = t.cycles

let count t name n =
  match Hashtbl.find_opt t.table name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.table name (ref n)

let get t name =
  match Hashtbl.find_opt t.table name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.table []
  |> List.sort compare

let reset t =
  t.cycles <- 0;
  Hashtbl.reset t.table
