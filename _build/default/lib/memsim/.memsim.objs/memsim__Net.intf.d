lib/memsim/net.mli: Clock Cost_model
