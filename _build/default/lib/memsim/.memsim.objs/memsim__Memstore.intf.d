lib/memsim/memstore.mli:
