lib/memsim/net.ml: Clock Cost_model
