lib/memsim/clock.ml: Hashtbl List
