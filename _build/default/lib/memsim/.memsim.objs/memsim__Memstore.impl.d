lib/memsim/memstore.ml: Bytes Char Hashtbl Int32 Int64
