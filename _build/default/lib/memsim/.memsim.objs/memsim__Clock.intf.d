lib/memsim/clock.mli:
