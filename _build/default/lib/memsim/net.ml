type backend = Tcp | Rdma

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  latency : int;
}

let create cost clock backend =
  let latency =
    match backend with
    | Tcp -> cost.Cost_model.tcp_latency
    | Rdma -> cost.Cost_model.rdma_latency
  in
  { cost; clock; latency }

let fetch t ~bytes =
  Clock.tick t.clock
    (Cost_model.transfer_cycles t.cost ~latency:t.latency ~bytes);
  Clock.count t.clock "net.bytes_in" bytes;
  Clock.count t.clock "net.fetches" 1

let fetch_prefetched t ~bytes =
  Clock.tick t.clock
    (t.cost.Cost_model.prefetch_hit + (bytes * 1000 / t.cost.Cost_model.bytes_per_kcycle));
  Clock.count t.clock "net.bytes_in" bytes;
  Clock.count t.clock "net.fetches" 1;
  Clock.count t.clock "net.prefetched_fetches" 1

(* Dirty data is pushed back by the asynchronous reclaim path (Fastswap's
   dedicated reclaim core, AIFM's evacuator threads), so the application
   only pays a small enqueue cost; the volume still counts toward the
   transfer totals the I/O-amplification figures report. *)
let writeback_enqueue_cycles = 250

let writeback t ~bytes =
  Clock.tick t.clock writeback_enqueue_cycles;
  Clock.count t.clock "net.bytes_out" bytes;
  Clock.count t.clock "net.writebacks" 1

let bytes_in t = Clock.get t.clock "net.bytes_in"
let bytes_out t = Clock.get t.clock "net.bytes_out"
let fetches t = Clock.get t.clock "net.fetches"
