(** Simulated cycle clock and event counters.

    Every runtime component charges its costs here; experiments read the
    final cycle count as "execution time" and the named counters as the
    event series the paper plots (guard counts, fault counts, bytes
    transferred). *)

type t

val create : unit -> t

val tick : t -> int -> unit
(** Advance the clock by a number of cycles. *)

val cycles : t -> int

val count : t -> string -> int -> unit
(** Add to a named counter, creating it at zero on first use. *)

val get : t -> string -> int
(** Value of a named counter (0 if never counted). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit
(** Zero the clock and all counters. *)
