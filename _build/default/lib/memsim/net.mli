(** Network transfer model between the compute node and the memory server.

    Two backends mirror the paper's setups: AIFM/TrackFM move objects over
    Shenango's TCP stack, Fastswap moves pages with one-sided RDMA. A
    fetch or writeback charges [latency + size/bandwidth] cycles to the
    clock and maintains the transfer counters the I/O-amplification
    figures report. Prefetched fetches overlap their latency with
    application progress and charge only the residual cost. *)

type backend = Tcp | Rdma

type t

val create : Cost_model.t -> Clock.t -> backend -> t

val fetch : t -> bytes:int -> unit
(** Demand fetch: blocks the application for the full transfer cost. *)

val fetch_prefetched : t -> bytes:int -> unit
(** Fetch whose latency was hidden by an earlier asynchronous prefetch. *)

val writeback : t -> bytes:int -> unit
(** Dirty data pushed to the remote node by the asynchronous reclaim path
    (Fastswap's dedicated reclaim core, AIFM's evacuator threads): the
    application is charged only a small enqueue cost, but the bytes count
    toward the transfer totals. *)

val bytes_in : t -> int
val bytes_out : t -> int
val fetches : t -> int

(** Counter names used on the shared clock: [net.bytes_in],
    [net.bytes_out], [net.fetches], [net.writebacks],
    [net.prefetched_fetches]. *)
