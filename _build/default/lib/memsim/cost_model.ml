type t = {
  local_access : int;
  fast_guard_read : int;
  fast_guard_write : int;
  slow_guard_read_local : int;
  slow_guard_write_local : int;
  custody_check : int;
  boundary_check : int;
  locality_guard : int;
  cache_miss_penalty : int;
  metadata_indirection : int;
  fastswap_fault_local : int;
  fastswap_fault_base : int;
  evict_object : int;
  evict_page : int;
  tcp_latency : int;
  rdma_latency : int;
  bytes_per_kcycle : int;
  prefetch_hit : int;
}

(* Table 1: fast guards 21 cyc cached, ~300 uncached; slow guards 144/159
   cached, 453/432 uncached. Table 2: Fastswap fault 1.3 Kcyc local /
   34-35 Kcyc remote; TrackFM slow guard ~450 local / 35 Kcyc remote.
   The remote numbers decompose as network latency + 4 KiB at 25 Gb/s. *)
let default =
  {
    local_access = 12;
    fast_guard_read = 21;
    fast_guard_write = 21;
    slow_guard_read_local = 144;
    slow_guard_write_local = 159;
    custody_check = 4;
    boundary_check = 3;
    locality_guard = 450;
    cache_miss_penalty = 280;
    metadata_indirection = 60;
    fastswap_fault_local = 1300;
    fastswap_fault_base = 900;
    evict_object = 120;
    evict_page = 600;
    tcp_latency = 31800;
    rdma_latency = 30000;
    bytes_per_kcycle = 1302;
    prefetch_hit = 450;
  }

let transfer_cycles t ~latency ~bytes =
  latency + (bytes * 1000 / t.bytes_per_kcycle)
