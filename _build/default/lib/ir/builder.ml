type t = {
  f : Ir.func;
  mutable cur : Ir.block;
  mutable label_counter : int;
}

let create m ~name ~nparams =
  let entry : Ir.block = { label = "entry"; instrs = []; term = Ir.Unreachable } in
  let f : Ir.func = { fname = name; nparams; blocks = [ entry ]; next_id = 0 } in
  m.Ir.funcs <- m.Ir.funcs @ [ f ];
  { f; cur = entry; label_counter = 0 }

let func b = b.f

let arg i = Ir.Arg i

let add_block b hint =
  b.label_counter <- b.label_counter + 1;
  let label = Printf.sprintf "%s%d" hint b.label_counter in
  let blk : Ir.block = { label; instrs = []; term = Ir.Unreachable } in
  b.f.blocks <- b.f.blocks @ [ blk ];
  label

let set_block b label = b.cur <- Ir.find_block b.f label

let current_label b = b.cur.label

let emit b kind =
  let id = Ir.fresh_id b.f in
  b.cur.instrs <- b.cur.instrs @ [ { Ir.id; kind } ];
  Ir.Reg id

let binop b op x y = emit b (Ir.Binop (op, x, y))
let add b x y = binop b Ir.Add x y
let sub b x y = binop b Ir.Sub x y
let mul b x y = binop b Ir.Mul x y
let fbinop b op x y = emit b (Ir.Fbinop (op, x, y))
let icmp b op x y = emit b (Ir.Icmp (op, x, y))
let fcmp b op x y = emit b (Ir.Fcmp (op, x, y))
let si_to_fp b v = emit b (Ir.Si_to_fp v)
let fp_to_si b v = emit b (Ir.Fp_to_si v)

let load b ?(size = 8) ?(is_float = false) ptr =
  emit b (Ir.Load { ptr; size; is_float })

let store b ?(size = 8) ?(is_float = false) v ~ptr =
  ignore (emit b (Ir.Store { ptr; size; is_float; v }))

let gep b base ~index ~scale ?(offset = 0) () =
  emit b (Ir.Gep { base; index; scale; offset })

let alloca b n = emit b (Ir.Alloca n)
let call b callee args = emit b (Ir.Call { callee; args })
let phi b incoming = emit b (Ir.Phi incoming)
let select b c x y = emit b (Ir.Select (c, x, y))

let patch_phi b v pred arm =
  let id = match v with Ir.Reg id -> id | _ -> invalid_arg "patch_phi" in
  let patch_instr (i : Ir.instr) =
    if i.id <> id then i
    else
      match i.kind with
      | Ir.Phi incoming ->
          let incoming = List.remove_assoc pred incoming in
          { i with kind = Ir.Phi (incoming @ [ (pred, arm) ]) }
      | _ -> invalid_arg "patch_phi: not a phi"
  in
  let patch_block (blk : Ir.block) =
    blk.instrs <- List.map patch_instr blk.instrs
  in
  List.iter patch_block b.f.blocks

let br b l = b.cur.term <- Ir.Br l
let cbr b c t e = b.cur.term <- Ir.Cbr (c, t, e)
let ret b v = b.cur.term <- Ir.Ret v

let for_loop b ?(hint = "loop") ~init ~bound ?(step = 1) body =
  let header = add_block b (hint ^ ".header") in
  let body_l = add_block b (hint ^ ".body") in
  let latch = add_block b (hint ^ ".latch") in
  let exit = add_block b (hint ^ ".exit") in
  let preheader = current_label b in
  br b header;
  set_block b header;
  let iv = phi b [ (preheader, init) ] in
  let cond = icmp b Ir.Lt iv bound in
  cbr b cond body_l exit;
  set_block b body_l;
  body b iv;
  (* The body may have moved the insertion point; wherever it ended up
     flows into the latch. *)
  br b latch;
  set_block b latch;
  let next = add b iv (Ir.Const step) in
  br b header;
  patch_phi b iv latch next;
  set_block b exit

let for_loop_acc b ?(hint = "loop") ~init ~bound ?(step = 1) ~accs body =
  let header = add_block b (hint ^ ".header") in
  let body_l = add_block b (hint ^ ".body") in
  let latch = add_block b (hint ^ ".latch") in
  let exit = add_block b (hint ^ ".exit") in
  let preheader = current_label b in
  br b header;
  set_block b header;
  let iv = phi b [ (preheader, init) ] in
  let acc_phis = List.map (fun a -> phi b [ (preheader, a) ]) accs in
  let cond = icmp b Ir.Lt iv bound in
  cbr b cond body_l exit;
  set_block b body_l;
  let next_accs = body b ~iv ~accs:acc_phis in
  if List.length next_accs <> List.length accs then
    invalid_arg "for_loop_acc: body must return one value per accumulator";
  br b latch;
  set_block b latch;
  let next = add b iv (Ir.Const step) in
  br b header;
  patch_phi b iv latch next;
  List.iter2 (fun p v -> patch_phi b p latch v) acc_phis next_accs;
  set_block b exit;
  acc_phis

let for_loop_down b ?(hint = "rloop") ~init ~bound ?(step = 1) body =
  if step <= 0 then invalid_arg "for_loop_down: step must be positive";
  let header = add_block b (hint ^ ".header") in
  let body_l = add_block b (hint ^ ".body") in
  let latch = add_block b (hint ^ ".latch") in
  let exit = add_block b (hint ^ ".exit") in
  let preheader = current_label b in
  br b header;
  set_block b header;
  let iv = phi b [ (preheader, init) ] in
  let cond = icmp b Ir.Gt iv bound in
  cbr b cond body_l exit;
  set_block b body_l;
  body b iv;
  br b latch;
  set_block b latch;
  let next = sub b iv (Ir.Const step) in
  br b header;
  patch_phi b iv latch next;
  set_block b exit

let while_loop_acc b ?(hint = "while") ~accs ~cond body =
  let header = add_block b (hint ^ ".header") in
  let body_l = add_block b (hint ^ ".body") in
  let latch = add_block b (hint ^ ".latch") in
  let exit = add_block b (hint ^ ".exit") in
  let preheader = current_label b in
  br b header;
  set_block b header;
  let acc_phis = List.map (fun a -> phi b [ (preheader, a) ]) accs in
  let c = cond b ~accs:acc_phis in
  cbr b c body_l exit;
  set_block b body_l;
  let next_accs = body b ~accs:acc_phis in
  if List.length next_accs <> List.length accs then
    invalid_arg "while_loop_acc: body must return one value per accumulator";
  br b latch;
  set_block b latch;
  br b header;
  List.iter2 (fun p v -> patch_phi b p latch v) acc_phis next_accs;
  set_block b exit;
  acc_phis

let if_then b ~cond then_body =
  let then_l = add_block b "then" in
  let join = add_block b "join" in
  cbr b cond then_l join;
  set_block b then_l;
  then_body b;
  br b join;
  set_block b join

let if_then_else b ~cond then_body else_body =
  let then_l = add_block b "then" in
  let else_l = add_block b "else" in
  let join = add_block b "join" in
  cbr b cond then_l else_l;
  set_block b then_l;
  then_body b;
  br b join;
  set_block b else_l;
  else_body b;
  br b join;
  set_block b join
