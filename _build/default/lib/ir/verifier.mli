(** Structural well-formedness checks for IR.

    Run after construction and after every transformation pass; a pass that
    produces ill-formed IR is a bug in the pass, so violations raise. *)

exception Ill_formed of string

val check_func : Ir.func -> unit
(** Verifies:
    - block labels are unique and branch targets exist;
    - instruction ids are unique within the function;
    - every [Reg] operand refers to an instruction that defines a value;
    - phi nodes appear only at the start of a block and their incoming
      labels exactly match the block's CFG predecessors;
    - the entry block has no phis;
    - [Arg] indices are within [nparams];
    - load/store sizes are 1, 2, 4 or 8.

    @raise Ill_formed with a description on the first violation. *)

val check_module : Ir.modul -> unit
