type t = {
  order : string list;
  succ : (string, string list) Hashtbl.t;
  pred : (string, string list) Hashtbl.t;
  entry : string;
}

let build (f : Ir.func) =
  let succ = Hashtbl.create 16 in
  let pred = Hashtbl.create 16 in
  let order = List.map (fun (b : Ir.block) -> b.label) f.blocks in
  List.iter
    (fun l ->
      Hashtbl.replace succ l [];
      Hashtbl.replace pred l [])
    order;
  let get table l = try Hashtbl.find table l with Not_found -> [] in
  let add_edge a b =
    (* Tolerate edges to labels that do not exist: the verifier reports
       them as Ill_formed; the CFG must not crash first. *)
    Hashtbl.replace succ a (get succ a @ [ b ]);
    Hashtbl.replace pred b (get pred b @ [ a ])
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun s -> add_edge b.label s) (Ir.successors b.term))
    f.blocks;
  { order; succ; pred; entry = (Ir.entry f).label }

let successors t l = try Hashtbl.find t.succ l with Not_found -> []
let predecessors t l = try Hashtbl.find t.pred l with Not_found -> []
let labels t = t.order

let postorder t =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec go l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter go (successors t l);
      out := l :: !out
    end
  in
  go t.entry;
  List.rev !out

let reachable t = List.rev (postorder t)
