(** Imperative construction of IR functions.

    A builder carries a current insertion block; instruction helpers append
    to it and return the defined value. Loop helpers construct the
    header/body/latch/exit skeleton with a proper phi-based induction
    variable, which is exactly the shape the induction-variable analysis
    (and thus the loop chunking pass) recognizes — the same way clang emits
    canonical loops that NOELLE analyses. *)

type t

val create : Ir.modul -> name:string -> nparams:int -> t
(** Create a function with an empty entry block and focus the builder on
    it. The function is registered in the module. *)

val func : t -> Ir.func

val arg : int -> Ir.value
(** Value of the i-th function parameter. *)

val add_block : t -> string -> string
(** [add_block b hint] creates a new (empty, unreachable-terminated) block
    with a unique label derived from [hint] and returns the label. Does not
    move the insertion point. *)

val set_block : t -> string -> unit
(** Move the insertion point to an existing block's end. *)

val current_label : t -> string

(** {1 Instructions} — each appends to the current block. *)

val binop : t -> Ir.binop -> Ir.value -> Ir.value -> Ir.value
val add : t -> Ir.value -> Ir.value -> Ir.value
val sub : t -> Ir.value -> Ir.value -> Ir.value
val mul : t -> Ir.value -> Ir.value -> Ir.value
val fbinop : t -> Ir.fbinop -> Ir.value -> Ir.value -> Ir.value
val icmp : t -> Ir.cmp -> Ir.value -> Ir.value -> Ir.value
val fcmp : t -> Ir.cmp -> Ir.value -> Ir.value -> Ir.value
val si_to_fp : t -> Ir.value -> Ir.value
val fp_to_si : t -> Ir.value -> Ir.value

val load : t -> ?size:int -> ?is_float:bool -> Ir.value -> Ir.value
(** Defaults: [size = 8], [is_float = false]. *)

val store : t -> ?size:int -> ?is_float:bool -> Ir.value -> ptr:Ir.value -> unit

val gep : t -> Ir.value -> index:Ir.value -> scale:int -> ?offset:int -> unit -> Ir.value
val alloca : t -> int -> Ir.value
val call : t -> string -> Ir.value list -> Ir.value
val phi : t -> (string * Ir.value) list -> Ir.value
val select : t -> Ir.value -> Ir.value -> Ir.value -> Ir.value

val patch_phi : t -> Ir.value -> string -> Ir.value -> unit
(** [patch_phi b (Reg id) pred v] adds/replaces the incoming [(pred, v)] arm
    of the phi defined by [id]. Needed to close loop backedges. *)

(** {1 Terminators} *)

val br : t -> string -> unit
val cbr : t -> Ir.value -> string -> string -> unit
val ret : t -> Ir.value option -> unit

(** {1 Structured helpers} *)

val for_loop :
  t ->
  ?hint:string ->
  init:Ir.value ->
  bound:Ir.value ->
  ?step:int ->
  (t -> Ir.value -> unit) ->
  unit
(** [for_loop b ~init ~bound body] emits a canonical counted loop
    [for (iv = init; iv < bound; iv += step) body iv]. The body callback may
    create nested blocks/loops; when it returns, the builder's current
    block is wired to the latch. After [for_loop], the insertion point is
    the exit block. [step] defaults to 1. *)

val for_loop_acc :
  t ->
  ?hint:string ->
  init:Ir.value ->
  bound:Ir.value ->
  ?step:int ->
  accs:Ir.value list ->
  (t -> iv:Ir.value -> accs:Ir.value list -> Ir.value list) ->
  Ir.value list
(** Counted loop with loop-carried accumulators. [accs] are the initial
    values; the body receives the current accumulator phis and returns
    their next-iteration values; the result is the accumulator values
    observable after the loop (the header phis, usable in the exit
    block). *)

val for_loop_down :
  t ->
  ?hint:string ->
  init:Ir.value ->
  bound:Ir.value ->
  ?step:int ->
  (t -> Ir.value -> unit) ->
  unit
(** Downward counted loop: [for (iv = init; iv > bound; iv -= step)].
    Mirrors [for_loop]; reverse array walks exercise the negative-stride
    paths of the chunking transform and prefetcher. [step] must be
    positive (it is subtracted). *)

val while_loop_acc :
  t ->
  ?hint:string ->
  accs:Ir.value list ->
  cond:(t -> accs:Ir.value list -> Ir.value) ->
  (t -> accs:Ir.value list -> Ir.value list) ->
  Ir.value list
(** General while loop with loop-carried state: [cond] is evaluated in the
    header over the current accumulator phis; while non-zero, the body
    runs and returns the next state. Result: the accumulator phis as
    visible after the loop. Unlike [for_loop]/[for_loop_acc] there is no
    induction variable, so such loops are never chunked. *)

val if_then :
  t ->
  cond:Ir.value ->
  (t -> unit) ->
  unit
(** Emit [if (cond) then-body]; insertion point ends at the join block. *)

val if_then_else :
  t ->
  cond:Ir.value ->
  (t -> unit) ->
  (t -> unit) ->
  unit
