lib/ir/ir.mli:
