lib/ir/printer.ml: Format Ir List
