lib/ir/cfg.ml: Hashtbl Ir List
