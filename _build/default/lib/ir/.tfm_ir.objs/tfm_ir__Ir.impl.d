lib/ir/ir.ml: List String
