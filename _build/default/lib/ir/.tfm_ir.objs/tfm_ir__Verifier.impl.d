lib/ir/verifier.ml: Cfg Format Hashtbl Ir List String
