(** Control-flow graph view of a function.

    Built once from a function snapshot; rebuilding after a transformation
    pass is the caller's responsibility. *)

type t

val build : Ir.func -> t

val successors : t -> string -> string list
val predecessors : t -> string -> string list

val labels : t -> string list
(** All block labels in function order (entry first). *)

val reachable : t -> string list
(** Labels reachable from the entry, in reverse postorder. *)

val postorder : t -> string list
(** Reachable labels in postorder (entry last). *)
