(** Memory-access trace record and replay.

    Wrapping a backend with {!recording} captures every load/store the
    interpreter issues (address, size, read/write). A captured trace can
    be replayed against any other backend with {!replay}, which drives the
    same access sequence through that backend's memory system and charges
    the same per-access base cost — useful for studying a memory system in
    isolation from computation, and for regression-testing that two
    backends see identical access streams.

    Traces are stored columnar (flat int arrays), so multi-million-access
    captures are cheap. *)

type t

val create : unit -> t

val recording : t -> Backend.t -> Backend.t
(** A backend that behaves exactly like the argument but appends every
    access to the trace. *)

val length : t -> int

val get : t -> int -> int * int * bool
(** [get t i] is [(addr, size, write)] of the i-th access. *)

val replay : t -> Backend.t -> unit
(** Drive the trace through [backend]: for each access, call its
    [on_access] hook and charge the local-access base cost, exactly as
    the interpreter does for a real load/store. *)

val reads : t -> int
val writes : t -> int

val footprint_bytes : t -> int
(** Number of distinct 64-byte lines touched, times 64. *)
