lib/interp/tracer.ml: Array Backend Hashtbl Memsim
