lib/interp/interp.mli: Backend Ir Profile
