lib/interp/interp.ml: Array Backend Format Hashtbl Ir List Memsim Profile String
