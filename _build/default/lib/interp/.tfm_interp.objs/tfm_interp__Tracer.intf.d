lib/interp/tracer.mli: Backend
