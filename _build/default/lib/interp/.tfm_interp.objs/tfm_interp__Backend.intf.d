lib/interp/backend.mli: Clock Cost_model Memstore Trackfm
