lib/interp/backend.ml: Aifm Array Clock Cost_model Fastswap Memsim Memstore Printf Trackfm
