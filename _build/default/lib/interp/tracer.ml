type t = {
  mutable addrs : int array;
  mutable meta : int array; (* size lsl 1 lor write *)
  mutable len : int;
}

let create () = { addrs = Array.make 1024 0; meta = Array.make 1024 0; len = 0 }

let ensure t =
  if t.len = Array.length t.addrs then begin
    let n = 2 * t.len in
    let addrs = Array.make n 0 and meta = Array.make n 0 in
    Array.blit t.addrs 0 addrs 0 t.len;
    Array.blit t.meta 0 meta 0 t.len;
    t.addrs <- addrs;
    t.meta <- meta
  end

let record t ~addr ~size ~write =
  ensure t;
  t.addrs.(t.len) <- addr;
  t.meta.(t.len) <- (size lsl 1) lor if write then 1 else 0;
  t.len <- t.len + 1

let recording t (backend : Backend.t) =
  {
    backend with
    Backend.on_access =
      (fun ~addr ~size ~write ->
        record t ~addr ~size ~write;
        backend.Backend.on_access ~addr ~size ~write);
  }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tracer.get";
  (t.addrs.(i), t.meta.(i) lsr 1, t.meta.(i) land 1 = 1)

let replay t (backend : Backend.t) =
  let cost = backend.Backend.cost.Memsim.Cost_model.local_access in
  for i = 0 to t.len - 1 do
    let addr = t.addrs.(i) in
    let size = t.meta.(i) lsr 1 in
    let write = t.meta.(i) land 1 = 1 in
    backend.Backend.on_access ~addr ~size ~write;
    Memsim.Clock.tick backend.Backend.clock cost
  done

let count_writes t =
  let w = ref 0 in
  for i = 0 to t.len - 1 do
    if t.meta.(i) land 1 = 1 then incr w
  done;
  !w

let writes = count_writes
let reads t = t.len - count_writes t

let footprint_bytes t =
  let lines = Hashtbl.create 1024 in
  for i = 0 to t.len - 1 do
    Hashtbl.replace lines (t.addrs.(i) lsr 6) ()
  done;
  64 * Hashtbl.length lines
