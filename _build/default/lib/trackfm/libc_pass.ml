let tfm_name = function
  | "malloc" -> Some "tfm_malloc"
  | "calloc" -> Some "tfm_calloc"
  | "realloc" -> Some "tfm_realloc"
  | "free" -> Some "tfm_free"
  | _ -> None

let run (m : Ir.modul) =
  let rewritten = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          b.instrs <-
            List.map
              (fun (i : Ir.instr) ->
                match i.kind with
                | Ir.Call { callee; args } -> begin
                    match tfm_name callee with
                    | Some name ->
                        incr rewritten;
                        { i with kind = Ir.Call { callee = name; args } }
                    | None -> i
                  end
                | _ -> i)
              b.instrs)
        f.blocks)
    m.funcs;
  !rewritten
