(* Must match the loop-entry charge in Runtime.chunk_init. *)
let chunk_init_call = 130

let chunk_entry_cost (c : Cost_model.t) = chunk_init_call + c.locality_guard

let naive_cost_per_object (c : Cost_model.t) ~density =
  ((density - 1) * c.fast_guard_read) + c.slow_guard_read_local

let chunked_cost_per_object (c : Cost_model.t) ~density =
  ((density - 1) * c.boundary_check) + c.locality_guard

let density_threshold (c : Cost_model.t) =
  float_of_int (c.slow_guard_read_local - c.locality_guard)
  /. float_of_int (c.boundary_check - c.fast_guard_read)

let should_chunk_static c ~density =
  float_of_int density > density_threshold c

let chunk_benefit (c : Cost_model.t) ~density ~avg_trip =
  let crossings = avg_trip /. float_of_int (max 1 density) in
  (avg_trip *. float_of_int (c.fast_guard_read - c.boundary_check))
  -. float_of_int (chunk_entry_cost c)
  -. (crossings
     *. float_of_int (c.locality_guard - c.slow_guard_read_local))

let should_chunk_profiled c ~density ~avg_trip =
  chunk_benefit c ~density ~avg_trip > 0.0
