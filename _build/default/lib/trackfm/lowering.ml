(* Weights follow Figure 4 and Section 3.3/3.4: the inlined guard body is
   14 instructions on its fast path plus the slow-path call stub; the
   chunking boundary check is 3 instructions; runtime hooks are plain
   calls. *)
let instr_weight : Ir.kind -> int = function
  | Ir.Call { callee; _ } -> begin
      match callee with
      | "tfm_guard_read" | "tfm_guard_write" -> 16 (* 14 + call stub *)
      | "tfm_chunk_access_read" | "tfm_chunk_access_write" -> 3
      | "!tfm_chunk_init" | "!tfm_chunk_end" -> 2
      | "!tfm_init" -> 1
      | _ -> 2 (* call + arg setup *)
    end
  | Ir.Phi _ -> 0 (* resolved into copies at block edges; amortized *)
  | Ir.Gep _ -> 2 (* lea or shift+add *)
  | Ir.Binop _ | Ir.Fbinop _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Si_to_fp _
  | Ir.Fp_to_si _ | Ir.Load _ | Ir.Store _ | Ir.Alloca _ | Ir.Select _ ->
      1

let func_size (f : Ir.func) =
  List.fold_left
    (fun acc (b : Ir.block) ->
      (* one instruction per terminator *)
      1
      + List.fold_left
          (fun acc (i : Ir.instr) -> acc + instr_weight i.kind)
          acc b.instrs)
    0 f.blocks

let module_size (m : Ir.modul) =
  List.fold_left (fun acc f -> acc + func_size f) 0 m.funcs
