let hook_name = "!tfm_init"

let run (m : Ir.modul) =
  match List.find_opt (fun (f : Ir.func) -> f.fname = "main") m.funcs with
  | None -> false
  | Some f ->
      let entry = Ir.entry f in
      let already =
        List.exists
          (fun (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } -> callee = hook_name
            | _ -> false)
          entry.instrs
      in
      if already then false
      else begin
        let id = Ir.fresh_id f in
        entry.instrs <-
          { Ir.id; kind = Ir.Call { callee = hook_name; args = [] } }
          :: entry.instrs;
        true
      end
