(** Libc transformation pass (Section 3.1).

    Rewrites every libc heap-management call site ([malloc], [calloc],
    [realloc], [free]) into the TrackFM-managed equivalents backed by
    AIFM's region allocator, so every heap allocation returns a
    non-canonical pointer in the tracked range. *)

val run : Ir.modul -> int
(** Number of call sites rewritten. *)

val tfm_name : string -> string option
(** The replacement callee for a libc allocation entry point, if any. *)
