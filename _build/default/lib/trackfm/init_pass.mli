(** Runtime initialization pass (Figure 2, first stage).

    Inserts a [!tfm_init] hook at the top of [main]'s entry block so the
    transformed binary brings up the TrackFM runtime before any
    application code runs — the transparency trick that spares the
    programmer any setup code. *)

val run : Ir.modul -> bool
(** [true] if a hook was inserted ([main] exists and was not already
    instrumented). Idempotent. *)

val hook_name : string
