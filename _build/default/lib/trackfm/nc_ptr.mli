(** Non-canonical TrackFM pointer encoding (Section 3.1).

    The paper overloads bit 60 of the x86 virtual address: TrackFM's
    custom malloc returns addresses in the non-canonical range starting at
    2^60, so a single shift-and-test distinguishes TrackFM-managed heap
    pointers from stack/global/foreign pointers, and any unguarded
    dereference of a tracked pointer would fault rather than silently read
    the wrong memory. OCaml ints are 63-bit, so the same encoding fits
    verbatim: simulated stack and global segments live far below 2^60 and
    can never collide with tagged heap addresses.

    The multi-object-size extension (the paper's Section 3.2 future work)
    additionally reserves bits 57-58 for a size-class index, so a guard
    can derive both the class and the object id from the pointer with
    shifts — no table lookup. *)

val tag_base : int
(** [2^60], the start of the TrackFM-managed address range. *)

val is_tracked : int -> bool
(** The custody check: does this pointer carry the TrackFM tag? *)

val offset : int -> int
(** Heap offset of a tracked pointer within its size class (address with
    the tag and class bits stripped). Requires [is_tracked]. *)

val size_class : int -> int
(** Size-class index (0-3) encoded in bits 57-58; 0 for the default
    single-class configuration. *)

val class_base : int -> int
(** Base address of a size class's heap range. *)

val object_id : int -> object_size_log2:int -> int
(** The AIFM object id a tracked pointer falls in: the in-class offset
    shifted by the object-size exponent — the "divide by the object size"
    of Section 3.2, a single shift because object sizes are powers of
    two. *)
