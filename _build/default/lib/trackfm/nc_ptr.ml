let tag_base = 1 lsl 60

let class_shift = 57
let class_mask = 0x3
let offset_mask = (1 lsl class_shift) - 1

let is_tracked ptr = ptr land tag_base <> 0

let offset ptr =
  assert (is_tracked ptr);
  ptr land offset_mask

let size_class ptr = (ptr lsr class_shift) land class_mask

let class_base idx =
  assert (idx >= 0 && idx <= class_mask);
  tag_base lor (idx lsl class_shift)

let object_id ptr ~object_size_log2 = offset ptr lsr object_size_log2
