lib/trackfm/lowering.ml: Ir List
