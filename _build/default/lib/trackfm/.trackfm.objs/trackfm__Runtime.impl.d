lib/trackfm/runtime.ml: Array Clock Cost_model Hashtbl List Memstore Nc_ptr Net Pool Prefetcher Queue Region_alloc
