lib/trackfm/chunk_pass.mli: Cost_model Hashtbl Ir Profile
