lib/trackfm/lowering.mli: Ir
