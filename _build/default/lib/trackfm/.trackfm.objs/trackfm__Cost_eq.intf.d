lib/trackfm/cost_eq.mli: Cost_model
