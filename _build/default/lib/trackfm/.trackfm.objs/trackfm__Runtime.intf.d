lib/trackfm/runtime.mli: Clock Cost_model Memstore Net Pool
