lib/trackfm/pipeline.mli: Chunk_pass Cost_model Guard_pass Ir Profile
