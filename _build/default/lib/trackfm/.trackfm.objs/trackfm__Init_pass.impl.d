lib/trackfm/init_pass.ml: Ir List
