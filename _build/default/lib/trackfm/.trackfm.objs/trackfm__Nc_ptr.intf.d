lib/trackfm/nc_ptr.mli:
