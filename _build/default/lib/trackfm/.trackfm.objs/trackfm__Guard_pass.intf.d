lib/trackfm/guard_pass.mli: Hashtbl Ir
