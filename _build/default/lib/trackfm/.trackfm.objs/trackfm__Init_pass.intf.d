lib/trackfm/init_pass.mli: Ir
