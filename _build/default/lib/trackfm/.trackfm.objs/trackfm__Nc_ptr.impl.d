lib/trackfm/nc_ptr.ml:
