lib/trackfm/libc_pass.ml: Ir List
