lib/trackfm/pipeline.ml: Chunk_pass Cost_model Guard_pass Init_pass Ir Libc_pass Lowering Profile Sys Verifier
