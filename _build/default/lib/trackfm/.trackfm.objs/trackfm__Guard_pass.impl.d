lib/trackfm/guard_pass.ml: Hashtbl Ir List Tfm_analysis
