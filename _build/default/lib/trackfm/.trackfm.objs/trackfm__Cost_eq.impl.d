lib/trackfm/cost_eq.ml: Cost_model
