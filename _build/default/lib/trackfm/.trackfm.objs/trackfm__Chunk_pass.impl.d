lib/trackfm/chunk_pass.ml: Cost_eq Hashtbl Ir List Tfm_analysis
