lib/trackfm/libc_pass.mli: Ir
