(** Loop chunking analysis and transformation (Sections 3.4 and 2).

    For every loop with a governing induction variable, strided accesses
    over a loop-invariant base are rewritten from per-access guards into
    the Figure 5 shape: a [!tfm_chunk_init] in the preheader, a cheap
    object-boundary check per access (the runtime call
    [tfm_chunk_access_*]), a locality invariant guard only at boundary
    crossings, and [!tfm_chunk_end] on the loop exits.

    Gate modes:
    - [`All] chunks every candidate (Figure 8/15's "all loops" line);
    - [`Gated] applies the Section 3.4 cost model — with a profile it uses
      measured trip counts, otherwise static object density (Eq. 3). *)

type mode = [ `Off | `All | `Gated ]

type candidate = {
  func : string;
  header : string;            (** loop header label *)
  base : Ir.value;            (** the strided pointer's base *)
  byte_stride : int;
  density : int;              (** object size / bytes-per-iteration *)
  accesses : int list;        (** instruction ids covered *)
  avg_trip : float option;    (** from the profile when available *)
  selected : bool;
}

type report = {
  candidates : candidate list;
  covered : (int, unit) Hashtbl.t;
      (** instruction ids now protected by chunk accesses — the guard
          pass must skip them *)
  chunk_sites : int;          (** handles allocated *)
}

val run :
  Cost_model.t ->
  object_size:int ->
  mode:mode ->
  ?profile:Profile.t ->
  Ir.modul ->
  report

(** Runtime call names emitted by the transform. *)

val chunk_init_name : string
val chunk_access_read_name : string
val chunk_access_write_name : string
val chunk_end_name : string
