(** The loop-chunking cost model (Section 3.4, Equations 1–3).

    With object density [d] (collection elements per TrackFM object), the
    per-object guard cost of a loop is

    - naive:   C    = (d-1)·cf + cs          (Eq. 1)
    - chunked: Copt = (d-1)·cb + cl          (Eq. 2)

    so chunking pays off iff [d > (cs - cl) / (cb - cf)] (Eq. 3).

    The paper couples this with NOELLE profiles because static density is
    not sufficient: a loop over a dense array that only runs a handful of
    iterations per entry (k-means' nested loops, the analytics
    aggregations) cannot amortize the chunk-entry runtime call. The
    profiled gate below generalizes Eq. 3 to measured trip counts; it
    reduces to Eq. 3 when a loop entry walks exactly one full object. *)

val chunk_entry_cost : Cost_model.t -> int
(** Cost of entering a chunked loop: the [chunk_init] runtime call plus
    the initial locality invariant guard. *)

val naive_cost_per_object : Cost_model.t -> density:int -> int
(** Equation 1. *)

val chunked_cost_per_object : Cost_model.t -> density:int -> int
(** Equation 2. *)

val density_threshold : Cost_model.t -> float
(** Right-hand side of Equation 3. *)

val should_chunk_static : Cost_model.t -> density:int -> bool
(** Equation 3: density strictly above the threshold. *)

val chunk_benefit :
  Cost_model.t -> density:int -> avg_trip:float -> float
(** Expected cycles saved per loop entry with measured [avg_trip]
    iterations: [trip·(cf − cb) − entry − crossings·(cl − cs)] where
    [crossings = trip/density]. Positive means chunking helps. *)

val should_chunk_profiled :
  Cost_model.t -> density:int -> avg_trip:float -> bool
