(** Synthetic x86-lowering size estimates (for the Section 4.6 compilation
    cost study).

    We cannot emit machine code, but the paper's code-size claim is about
    instruction expansion: each guard lowers to the ~14-instruction
    sequence of Figure 4b, boundary checks to 3 instructions, and so on.
    This module assigns every IR instruction its lowered instruction
    count so the before/after ratio is comparable to the paper's. *)

val instr_weight : Ir.kind -> int
(** Lowered x86 instruction count for one IR instruction. *)

val func_size : Ir.func -> int
val module_size : Ir.modul -> int
