type t = {
  base : int;
  mutable brk : int;
  free_lists : (int, int list ref) Hashtbl.t; (* size class -> addresses *)
  live : (int, int * int) Hashtbl.t; (* addr -> class size, requested *)
  mutable live_bytes : int;
}

let create ~base =
  { base; brk = base; free_lists = Hashtbl.create 16; live = Hashtbl.create 64;
    live_bytes = 0 }

let page = 4096

let size_class n =
  if n <= 16 then 16
  else if n >= 16 * page then
    (* Large blocks are page-granular (the slab/pow2 rounding of small
       classes would waste up to half the block). *)
    (n + page - 1) / page * page
  else begin
    (* next power of two *)
    let c = ref 16 in
    while !c < n do
      c := !c * 2
    done;
    !c
  end

let alloc t n =
  if n <= 0 then invalid_arg "Region_alloc.alloc: size must be positive";
  let cls = size_class n in
  let addr =
    match Hashtbl.find_opt t.free_lists cls with
    | Some ({ contents = addr :: rest } as l) ->
        l := rest;
        addr
    | Some { contents = [] } | None ->
        let addr = t.brk in
        t.brk <- t.brk + cls;
        addr
  in
  Hashtbl.replace t.live addr (cls, n);
  t.live_bytes <- t.live_bytes + cls;
  addr

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Region_alloc.free: not a live allocation"
  | Some (cls, _) ->
      Hashtbl.remove t.live addr;
      t.live_bytes <- t.live_bytes - cls;
      let l =
        match Hashtbl.find_opt t.free_lists cls with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.free_lists cls l;
            l
      in
      l := addr :: !l

let size_of t addr =
  match Hashtbl.find_opt t.live addr with
  | Some (cls, _) -> cls
  | None -> invalid_arg "Region_alloc.size_of: not live"

let requested_size_of t addr =
  match Hashtbl.find_opt t.live addr with
  | Some (_, req) -> req
  | None -> invalid_arg "Region_alloc.requested_size_of: not live"

let high_watermark t = t.brk
let live_bytes t = t.live_bytes
