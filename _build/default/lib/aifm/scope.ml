let with_object pool id f =
  Pool.pin pool id;
  Fun.protect ~finally:(fun () -> Pool.unpin pool id) f

let with_objects pool ids f =
  List.iter (Pool.pin pool) ids;
  Fun.protect ~finally:(fun () -> List.iter (Pool.unpin pool) ids) f
