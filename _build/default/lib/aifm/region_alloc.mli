(** Region-based heap allocator over simulated addresses.

    AIFM backs remotable memory with a region allocator; TrackFM's libc
    transformation routes [malloc]/[calloc]/[realloc]/[free] here so every
    heap allocation lands in the far-memory address range (Section 3.2).
    Small requests are served from power-of-two size-class free lists; a
    freed block is recycled within its class. Large requests (64 KiB and
    up) bump-allocate page-granular regions.

    The allocator hands out raw simulated addresses starting at [base];
    callers add the non-canonical tag themselves if they need tagged
    pointers. *)

type t

val create : base:int -> t

val alloc : t -> int -> int
(** [alloc t n] returns the address of an [n]-byte block, 16-byte aligned.
    [n] must be positive. *)

val free : t -> int -> unit
(** @raise Invalid_argument on a double free or an address not returned by
    [alloc]. *)

val size_of : t -> int -> int
(** Usable size of a live allocation (its rounded size class). *)

val requested_size_of : t -> int -> int
(** The size originally passed to [alloc] (needed by realloc copying). *)

val high_watermark : t -> int
(** One past the highest address ever handed out; the heap span that the
    object state table must cover. *)

val live_bytes : t -> int
(** Sum of size classes of live allocations. *)
