lib/aifm/scope.mli: Pool
