lib/aifm/prefetcher.ml: Array Pool
