lib/aifm/pool.ml: Bytes Char Clock Cost_model Fun Hashtbl Net Queue
