lib/aifm/remote.ml: Clock Cost_model Memstore Net Pool Prefetcher Region_alloc Scope
