lib/aifm/pool.mli: Clock Cost_model Net
