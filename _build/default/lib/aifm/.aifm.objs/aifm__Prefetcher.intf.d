lib/aifm/prefetcher.mli: Pool
