lib/aifm/scope.ml: Fun List Pool
