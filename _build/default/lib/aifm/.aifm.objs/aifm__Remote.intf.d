lib/aifm/remote.mli: Clock Cost_model Memstore Net Pool
