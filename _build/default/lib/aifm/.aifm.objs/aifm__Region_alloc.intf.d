lib/aifm/region_alloc.mli:
