lib/aifm/region_alloc.ml: Hashtbl
