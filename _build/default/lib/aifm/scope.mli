(** DerefScope: pin objects for the duration of a computation.

    AIFM requires every dereference of remotable memory to happen under a
    scope so the evacuator cannot delocalize in-use objects (Listing 1 of
    the paper). The TrackFM guard protocol relies on the same mechanism:
    between the guard's safety check and the target load/store the object
    is in-scope and therefore unevictable. *)

val with_object : Pool.t -> int -> (unit -> 'a) -> 'a
(** Pin one object id around the callback (exception-safe). *)

val with_objects : Pool.t -> int list -> (unit -> 'a) -> 'a
