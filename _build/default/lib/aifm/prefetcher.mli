(** AIFM's runtime stride prefetcher.

    Watches the stream of accessed object ids; once a stride repeats, it
    issues asynchronous prefetches for the next [depth] objects in the
    stream, so subsequent demand accesses pay only the overlapped residual
    cost. TrackFM's compiler-directed prefetching (Section 4.3) drives the
    same machinery, but keyed by the loop-chunking pass's static stride
    instead of a learned one. *)

type t

val create : Pool.t -> ?streams:int -> ?depth:int -> unit -> t
(** [streams] concurrent stride streams are tracked (default 8);
    [depth] objects are prefetched ahead (default 8). *)

val access : t -> int -> unit
(** Observe an access to an object id, learning strides and issuing
    prefetches as confidence is established. *)

val prefetch_exact : t -> start:int -> stride:int -> unit
(** Compiler-directed: immediately cover [start, start+stride, ...] for
    [depth] objects without needing to learn the stride. *)
