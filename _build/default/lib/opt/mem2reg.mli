(** Promotion of stack slots to SSA registers (mem2reg).

    Unoptimized frontends keep every source variable in an [alloca]'d
    stack slot and load/store it around each use — the IR shape clang
    emits at -O0. Promoting those slots to SSA registers is the first
    thing -O1 does, and it matters here because the induction-variable
    analysis (and therefore TrackFM's loop chunking) only sees IVs that
    are phi nodes, not memory cells.

    An alloca is promotable when every use is directly the pointer of a
    load or store (never an operand of arithmetic, a call, a gep, or the
    stored value) and all its 8-byte accesses agree on floatness.
    Promotion uses block-local renaming with a phi per promoted variable
    at every join; {!Opt.dce} afterwards removes the phis that turn out
    dead. *)

val promote : Ir.func -> int
(** Promote all promotable allocas; returns how many were promoted.
    Verifies the function's module-level invariants are preserved by
    construction (run {!Ir} verification at the caller if desired). *)

val run : Ir.modul -> int
(** [promote] every function, then a {!Opt.dce} cleanup; verifies the
    module. *)
