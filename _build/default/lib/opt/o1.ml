let run (m : Ir.modul) =
  let inlined = Inline.inline_calls m in
  let promoted = Mem2reg.run m in
  let cleaned = Opt.run_o1 m in
  Verifier.check_module m;
  inlined + promoted + cleaned
