(* A promotable alloca and the access shape its loads/stores agree on. *)
type candidate = { alloca_id : int; size : int; is_float : bool }

let find_candidates (f : Ir.func) =
  let allocas = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Alloca _ -> Hashtbl.replace allocas i.id None
          | _ -> ())
        b.instrs)
    f.blocks;
  (* Disqualify on any non-load/store-pointer use; record access shape. *)
  let disqualify id = Hashtbl.remove allocas id in
  let note_access id ~size ~is_float =
    (* Only full-width (8-byte) slots are promoted: narrower accesses
       truncate through memory, which a register would not. *)
    if size <> 8 then disqualify id
    else
      match Hashtbl.find_opt allocas id with
      | None -> ()
      | Some None -> Hashtbl.replace allocas id (Some (size, is_float))
      | Some (Some (s, fl)) ->
          if s <> size || fl <> is_float then disqualify id
  in
  let check_value ~as_plain_operand = function
    | Ir.Reg id when Hashtbl.mem allocas id && as_plain_operand ->
        disqualify id
    | _ -> ()
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Load { ptr = Ir.Reg id; size; is_float }
            when Hashtbl.mem allocas id ->
              note_access id ~size ~is_float
          | Ir.Store { ptr = Ir.Reg id; size; is_float; v }
            when Hashtbl.mem allocas id ->
              note_access id ~size ~is_float;
              check_value ~as_plain_operand:true v
          | k ->
              List.iter (check_value ~as_plain_operand:true)
                (Ir.instr_operands k))
        b.instrs;
      match b.term with
      | Ir.Cbr (c, _, _) -> check_value ~as_plain_operand:true c
      | Ir.Ret (Some v) -> check_value ~as_plain_operand:true v
      | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> ())
    f.blocks;
  Hashtbl.fold
    (fun id shape acc ->
      match shape with
      | Some (size, is_float) -> { alloca_id = id; size; is_float } :: acc
      | None -> acc (* never accessed: plain DCE food *))
    allocas []

let promote (f : Ir.func) =
  let candidates = find_candidates f in
  if candidates = [] then 0
  else begin
    let cfg = Cfg.build f in
    let entry_label = (Ir.entry f).label in
    let undef_of (c : candidate) =
      if c.is_float then Ir.Constf 0.0 else Ir.Const 0
    in
    (* One phi per (variable, non-entry block); the entry's incoming value
       is undef (a promotable slot read before any store reads zero in
       our frame model, matching Const 0 / 0.0). *)
    let phi_of : (int * string, Ir.instr) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (b : Ir.block) ->
        if b.label <> entry_label then
          List.iter
            (fun c ->
              let id = Ir.fresh_id f in
              Hashtbl.replace phi_of (c.alloca_id, b.label)
                { Ir.id; kind = Ir.Phi [] })
            candidates)
      f.blocks;
    (* Rename block by block; collect exit values and use substitutions. *)
    let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 32 in
    let exit_value : (int * string, Ir.value) Hashtbl.t = Hashtbl.create 32 in
    let is_candidate id = List.exists (fun c -> c.alloca_id = id) candidates in
    List.iter
      (fun (b : Ir.block) ->
        let current : (int, Ir.value) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun c ->
            let init =
              if b.label = entry_label then undef_of c
              else Ir.Reg (Hashtbl.find phi_of (c.alloca_id, b.label)).Ir.id
            in
            Hashtbl.replace current c.alloca_id init)
          candidates;
        b.instrs <-
          List.filter
            (fun (i : Ir.instr) ->
              match i.kind with
              | Ir.Alloca _ when is_candidate i.id -> false
              | Ir.Load { ptr = Ir.Reg id; _ } when is_candidate id ->
                  Hashtbl.replace subst i.id (Hashtbl.find current id);
                  false
              | Ir.Store { ptr = Ir.Reg id; v; _ } when is_candidate id ->
                  Hashtbl.replace current id v;
                  false
              | _ -> true)
            b.instrs;
        List.iter
          (fun c ->
            Hashtbl.replace exit_value (c.alloca_id, b.label)
              (Hashtbl.find current c.alloca_id))
          candidates)
      f.blocks;
    (* Resolve substitution chains (a promoted load may map to another
       promoted load's id). *)
    let rec resolve v =
      match v with
      | Ir.Reg id -> (
          match Hashtbl.find_opt subst id with Some v' -> resolve v' | None -> v)
      | _ -> v
    in
    (* Install the phis with arms from predecessor exit values. *)
    List.iter
      (fun (b : Ir.block) ->
        if b.label <> entry_label then begin
          let preds = Cfg.predecessors cfg b.label in
          let new_phis =
            List.filter_map
              (fun c ->
                match Hashtbl.find_opt phi_of (c.alloca_id, b.label) with
                | None -> None
                | Some phi ->
                    let arms =
                      List.map
                        (fun p ->
                          (p, resolve (Hashtbl.find exit_value (c.alloca_id, p))))
                        preds
                    in
                    Some { phi with Ir.kind = Ir.Phi arms })
              candidates
          in
          b.instrs <- new_phis @ b.instrs
        end)
      f.blocks;
    (* Rewrite all remaining uses through the substitution. *)
    let rewrite v = resolve v in
    List.iter
      (fun (b : Ir.block) ->
        b.instrs <-
          List.map
            (fun (i : Ir.instr) ->
              { i with Ir.kind = Ir.map_operands rewrite i.kind })
            b.instrs;
        b.term <-
          (match b.term with
          | Ir.Cbr (c, t, e) -> Ir.Cbr (rewrite c, t, e)
          | Ir.Ret (Some v) -> Ir.Ret (Some (rewrite v))
          | (Ir.Br _ | Ir.Ret None | Ir.Unreachable) as t -> t))
      f.blocks;
    List.length candidates
  end

let run (m : Ir.modul) =
  let n = List.fold_left (fun acc f -> acc + promote f) 0 m.Ir.funcs in
  if n > 0 then
    List.iter
      (fun f ->
        ignore (Opt.simplify_trivial_phis f);
        ignore (Opt.dce f))
      m.Ir.funcs;
  Verifier.check_module m;
  n
