(** The "O1" pre-optimization pipeline (Section 4.5, Figure 17b).

    NOELLE's default pipeline hands TrackFM unoptimized IR; the paper
    found that running standard cleanups first (redundant-load and dead
    code elimination) cuts the memory instructions — and therefore the
    injected guards — by 4-6x on FT and SP. This library provides those
    cleanups for our IR:

    - constant folding of integer arithmetic, comparisons and selects;
    - local common-subexpression elimination of loads (a load from the
      same address with no intervening store or call reuses the earlier
      value) and of pure arithmetic;
    - dead code elimination of unused pure instructions (including dead
      loads).

    All passes preserve program semantics for any memory state; the test
    suite checks IR results before and after on every backend. *)

val constant_fold : Ir.func -> int
(** Returns the number of instructions folded. *)

val cse : Ir.func -> int
(** Local (per-block) CSE over pure arithmetic and loads. Returns the
    number of instructions eliminated. *)

val dce : Ir.func -> int
(** Remove unused pure instructions. Returns the number removed. *)

val run_o1 : Ir.modul -> int
(** The full -O1-style pipeline: inline small functions and promote
    stack slots (see {!Inline} and {!Mem2reg}), then iterate
    fold/CSE/LICM/phi-simplify/DCE/simplify-cfg to a fixpoint
    module-wide; returns total instructions eliminated or rewritten.
    Verifies the module afterwards. *)

val licm : Ir.func -> int
(** Loop-invariant code motion for pure arithmetic and loads: an
    instruction whose operands are all defined outside the loop is hoisted
    to the preheader. Loads are hoisted only out of loops that contain no
    stores or calls (conservative aliasing), which is exactly the case
    where hoisting also removes a guard per iteration. Returns the number
    of instructions hoisted. *)

val simplify_cfg : Ir.func -> int
(** Control-flow cleanups: fold conditional branches on constants, thread
    jumps through empty forwarding blocks, and delete unreachable blocks
    (fixing up phi arms that referenced them). Returns the number of
    blocks removed or branches folded. *)

val simplify_trivial_phis : Ir.func -> int
(** Replace phis whose incoming arms all carry one same value (ignoring
    self-references) with that value. Runs to a fixpoint; returns the
    number of phis removed. Mem2reg's maximal phi placement relies on
    this cleanup to restore the direct [phi -> add(phi, c)] shape the
    induction-variable analysis matches. *)
