lib/opt/o1.mli: Ir
