lib/opt/opt.mli: Ir
