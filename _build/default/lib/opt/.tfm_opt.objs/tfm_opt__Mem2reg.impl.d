lib/opt/mem2reg.ml: Cfg Hashtbl Ir List Opt Verifier
