lib/opt/opt.ml: Cfg Hashtbl Ir List Tfm_analysis Verifier
