lib/opt/mem2reg.mli: Ir
