lib/opt/inline.ml: Array Hashtbl Ir List Printf Verifier
