lib/opt/inline.mli: Ir
