lib/opt/o1.ml: Inline Ir Mem2reg Opt Verifier
