let is_ir_function (m : Ir.modul) callee =
  List.exists (fun (f : Ir.func) -> f.fname = callee) m.funcs

let has_alloca (f : Ir.func) =
  List.exists
    (fun (b : Ir.block) ->
      List.exists
        (fun (i : Ir.instr) ->
          match i.kind with Ir.Alloca _ -> true | _ -> false)
        b.instrs)
    f.blocks

let is_recursive (f : Ir.func) =
  List.exists
    (fun (b : Ir.block) ->
      List.exists
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Call { callee; _ } -> callee = f.fname
          | _ -> false)
        b.instrs)
    f.blocks

(* Clone [callee]'s body into [caller] at one call site. *)
let inline_one (caller : Ir.func) (callee : Ir.func) ~(block : Ir.block)
    ~(call : Ir.instr) ~(args : Ir.value list) ~(uniq : int) =
  (* Fresh names/ids for the clone. *)
  let label_map = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace label_map b.label
        (Printf.sprintf "inl%d.%s" uniq b.label))
    callee.blocks;
  let id_map = Hashtbl.create 32 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          Hashtbl.replace id_map i.id (Ir.fresh_id caller))
        b.instrs)
    callee.blocks;
  let args = Array.of_list args in
  let map_value = function
    | Ir.Reg id -> Ir.Reg (Hashtbl.find id_map id)
    | Ir.Arg i -> args.(i)
    | (Ir.Const _ | Ir.Constf _ | Ir.Sym _) as v -> v
  in
  let map_label l = Hashtbl.find label_map l in
  (* Split the calling block: [block] keeps the pre-call instructions and
     jumps into the clone; a fresh post block receives the rest plus the
     original terminator (so predecessors of [block] still land on the
     pre-call code). *)
  let rec split pre = function
    | [] -> invalid_arg "inline_one: call not in block"
    | (i : Ir.instr) :: rest ->
        if i.id = call.id then (List.rev pre, rest) else split (i :: pre) rest
  in
  let pre, post = split [] block.instrs in
  let post_label = Printf.sprintf "inl%d.ret" uniq in
  (* Collect return sites to build the result phi. *)
  let ret_arms = ref [] in
  let cloned_blocks =
    List.map
      (fun (b : Ir.block) ->
        let instrs =
          List.map
            (fun (i : Ir.instr) ->
              {
                Ir.id = Hashtbl.find id_map i.id;
                kind =
                  (match i.kind with
                  | Ir.Phi incoming ->
                      Ir.Phi
                        (List.map
                           (fun (l, v) -> (map_label l, map_value v))
                           incoming)
                  | k -> Ir.map_operands map_value k);
              })
            b.instrs
        in
        let term =
          match b.term with
          | Ir.Br l -> Ir.Br (map_label l)
          | Ir.Cbr (c, t, e) -> Ir.Cbr (map_value c, map_label t, map_label e)
          | Ir.Ret v ->
              let v =
                match v with Some v -> map_value v | None -> Ir.Const 0
              in
              ret_arms := (map_label b.label, v) :: !ret_arms;
              Ir.Br post_label
          | Ir.Unreachable -> Ir.Unreachable
        in
        { Ir.label = map_label b.label; instrs; term })
      callee.blocks
  in
  (* The post block: the call's result becomes a phi over the return
     sites, followed by the remaining instructions and the original
     terminator. *)
  let result_phi = { Ir.id = call.id; kind = Ir.Phi (List.rev !ret_arms) } in
  let post_block =
    { Ir.label = post_label; instrs = result_phi :: post; term = block.term }
  in
  (* Rewire the pre block. *)
  block.instrs <- pre;
  block.term <- Ir.Br (map_label (Ir.entry callee).label);
  (* Successor phis that referenced the original block now flow from the
     post block. *)
  List.iter
    (fun succ_label ->
      match Ir.find_block caller succ_label with
      | succ ->
          succ.instrs <-
            List.map
              (fun (i : Ir.instr) ->
                match i.kind with
                | Ir.Phi incoming ->
                    {
                      i with
                      kind =
                        Ir.Phi
                          (List.map
                             (fun (l, v) ->
                               ((if l = block.label then post_label else l), v))
                             incoming);
                    }
                | _ -> i)
              succ.instrs
      | exception Not_found -> ())
    (Ir.successors post_block.term);
  caller.blocks <- caller.blocks @ cloned_blocks @ [ post_block ]

let find_inlinable (m : Ir.modul) ~max_size (caller : Ir.func) =
  List.find_map
    (fun (b : Ir.block) ->
      List.find_map
        (fun (i : Ir.instr) ->
          match i.kind with
          | Ir.Call { callee; args }
            when callee <> caller.fname && is_ir_function m callee -> begin
              match Ir.find_func m callee with
              | g
                when (not (has_alloca g))
                     && (not (is_recursive g))
                     && Ir.instr_count g <= max_size ->
                  Some (b, i, g, args)
              | _ -> None
            end
          | _ -> None)
        b.instrs)
    caller.blocks

let inline_calls ?(max_size = 100) (m : Ir.modul) =
  let count = ref 0 in
  let uniq = ref 0 in
  let budget = ref 1000 (* defensive bound on total inlinings *) in
  List.iter
    (fun (caller : Ir.func) ->
      let continue_ = ref true in
      while !continue_ && !budget > 0 do
        match find_inlinable m ~max_size caller with
        | Some (block, call, callee, args) ->
            incr uniq;
            incr count;
            decr budget;
            inline_one caller callee ~block ~call ~args ~uniq:!uniq
        | None -> continue_ := false
      done)
    m.funcs;
  Verifier.check_module m;
  !count
