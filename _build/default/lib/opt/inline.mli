(** Function inlining.

    TrackFM consumes whole-program bitcode (WLLVM links the entire
    application, Section 4's setup), so intra-procedural analyses see
    through what were call boundaries in the source. Our builder-made
    workloads are mostly single-function; this pass supplies the same
    effect for programs written with helpers: a loop body that calls
    [get(arr, i)] cannot be chunked — the strided access is hidden in the
    callee — until the call is inlined.

    Restrictions (skipped call sites): recursive callees, callees
    containing [alloca] (inlining would re-execute the allocation per
    iteration under our frame model), callees larger than [max_size]
    instructions, and intrinsics/libc (not IR functions). *)

val inline_calls : ?max_size:int -> Ir.modul -> int
(** Inline eligible call sites module-wide, repeating until a fixpoint
    (bounded). Returns the number of call sites inlined. The module is
    verified afterwards. *)
