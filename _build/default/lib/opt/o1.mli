(** The complete -O1-style pre-optimization: what Figure 17b's "TFM/O1"
    configuration runs before the TrackFM passes.

    Order: inline small helpers ({!Inline}), promote stack slots to SSA
    ({!Mem2reg}) — both of which expose induction variables and strided
    accesses to the chunking pass — then the scalar cleanup fixpoint
    ({!Opt.run_o1}). *)

val run : Ir.modul -> int
(** Returns the total of inlined sites, promoted slots and eliminated
    instructions. Verifies the module afterwards. *)
