(* Substitute values according to [subst] throughout the function. *)
let substitute (f : Ir.func) subst =
  let rewrite v =
    match v with
    | Ir.Reg id -> ( match Hashtbl.find_opt subst id with Some v' -> v' | None -> v)
    | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> v
  in
  List.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.map
          (fun (i : Ir.instr) -> { i with Ir.kind = Ir.map_operands rewrite i.kind })
          b.instrs;
      b.term <-
        (match b.term with
        | Ir.Cbr (c, t, e) -> Ir.Cbr (rewrite c, t, e)
        | Ir.Ret (Some v) -> Ir.Ret (Some (rewrite v))
        | (Ir.Br _ | Ir.Ret None | Ir.Unreachable) as t -> t))
    f.blocks

let eval_binop op a b =
  match (op : Ir.binop) with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Sdiv -> if b = 0 then None else Some (a / b)
  | Srem -> if b = 0 then None else Some (a mod b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)
  | Shl -> Some (a lsl b)
  | Lshr -> Some (a lsr b)
  | Ashr -> Some (a asr b)

let eval_cmp op a b =
  let c =
    match (op : Ir.cmp) with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if c then 1 else 0

let constant_fold (f : Ir.func) =
  let subst = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Binop (op, Ir.Const a, Ir.Const b) -> begin
              match eval_binop op a b with
              | Some v -> Hashtbl.replace subst i.id (Ir.Const v)
              | None -> ()
            end
          | Ir.Icmp (op, Ir.Const a, Ir.Const b) ->
              Hashtbl.replace subst i.id (Ir.Const (eval_cmp op a b))
          | Ir.Select (Ir.Const c, x, y) ->
              Hashtbl.replace subst i.id (if c <> 0 then x else y)
          | Ir.Gep { base = Ir.Const p; index = Ir.Const i'; scale; offset } ->
              Hashtbl.replace subst i.id (Ir.Const (p + (i' * scale) + offset))
          | _ -> ())
        b.instrs)
    f.blocks;
  if Hashtbl.length subst > 0 then substitute f subst;
  Hashtbl.length subst

(* Structural key for pure instructions eligible for local CSE. *)
let cse_key (k : Ir.kind) =
  match k with
  | Ir.Binop _ | Ir.Fbinop _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Gep _
  | Ir.Si_to_fp _ | Ir.Fp_to_si _ | Ir.Select _ ->
      Some (`Pure k)
  | Ir.Load { ptr; size; is_float } -> Some (`Load (ptr, size, is_float))
  | Ir.Store _ | Ir.Call _ | Ir.Alloca _ | Ir.Phi _ -> None

let cse (f : Ir.func) =
  let subst = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      let pure : (Ir.kind, int) Hashtbl.t = Hashtbl.create 16 in
      let loads : (Ir.value * int * bool, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.kind with
          | Ir.Store _ | Ir.Call _ ->
              (* Conservatively kill all remembered loads. *)
              Hashtbl.reset loads
          | _ -> begin
              match cse_key i.Ir.kind with
              | Some (`Pure k) -> begin
                  match Hashtbl.find_opt pure k with
                  | Some prev -> Hashtbl.replace subst i.id (Ir.Reg prev)
                  | None -> Hashtbl.replace pure k i.id
                end
              | Some (`Load key) -> begin
                  match Hashtbl.find_opt loads key with
                  | Some prev -> Hashtbl.replace subst i.id (Ir.Reg prev)
                  | None -> Hashtbl.replace loads key i.id
                end
              | None -> ()
            end)
        b.instrs)
    f.blocks;
  if Hashtbl.length subst > 0 then begin
    substitute f subst;
    (* Drop the now-unused duplicates immediately so the count is real. *)
    List.iter
      (fun (b : Ir.block) ->
        b.instrs <-
          List.filter (fun (i : Ir.instr) -> not (Hashtbl.mem subst i.id)) b.instrs)
      f.blocks
  end;
  Hashtbl.length subst

let has_side_effect (k : Ir.kind) =
  match k with
  | Ir.Store _ | Ir.Call _ -> true
  | Ir.Alloca _ -> true (* keep frame layout stable *)
  | Ir.Binop _ | Ir.Fbinop _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Si_to_fp _
  | Ir.Fp_to_si _ | Ir.Load _ | Ir.Gep _ | Ir.Phi _ | Ir.Select _ ->
      false

let dce (f : Ir.func) =
  let used = Hashtbl.create 64 in
  let note = function
    | Ir.Reg id -> Hashtbl.replace used id ()
    | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> ()
  in
  let removed = ref 0 in
  let rec fixpoint () =
    Hashtbl.reset used;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) -> List.iter note (Ir.instr_operands i.Ir.kind))
          b.instrs;
        match b.term with
        | Ir.Cbr (c, _, _) -> note c
        | Ir.Ret (Some v) -> note v
        | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> ())
      f.blocks;
    let changed = ref false in
    List.iter
      (fun (b : Ir.block) ->
        let keep, drop =
          List.partition
            (fun (i : Ir.instr) ->
              has_side_effect i.Ir.kind || Hashtbl.mem used i.id)
            b.instrs
        in
        if drop <> [] then begin
          b.instrs <- keep;
          removed := !removed + List.length drop;
          changed := true
        end)
      f.blocks;
    if !changed then fixpoint ()
  in
  fixpoint ();
  !removed

let licm (f : Ir.func) =
  let hoisted = ref 0 in
  let loop_info = Tfm_analysis.Loops.analyze f in
  List.iter
    (fun (loop : Tfm_analysis.Loops.loop) ->
      match loop.preheader with
      | None -> ()
      | Some pre_label ->
          (* [du] is refreshed after each hoisting round so that values
             moved to the preheader count as loop-invariant for the next
             round. *)
          let du = ref (Tfm_analysis.Defuse.build f) in
          let in_loop_def = function
            | Ir.Reg id -> begin
                match Tfm_analysis.Defuse.block_of !du id with
                | Some blk -> Tfm_analysis.Loops.contains loop blk
                | None -> false
              end
            | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> false
          in
          let loop_has_memory_effects =
            List.exists
              (fun blk_label ->
                let blk = Ir.find_block f blk_label in
                List.exists
                  (fun (i : Ir.instr) ->
                    match i.kind with
                    | Ir.Store _ | Ir.Call _ -> true
                    | _ -> false)
                  blk.instrs)
              loop.body
          in
          let hoistable (i : Ir.instr) =
            let pure_ok =
              match i.kind with
              | Ir.Binop ((Ir.Sdiv | Ir.Srem), _, _) ->
                  false (* may trap; keep it guarded by the loop condition *)
              | Ir.Binop _ | Ir.Fbinop _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Gep _
              | Ir.Si_to_fp _ | Ir.Fp_to_si _ | Ir.Select _ ->
                  true
              | Ir.Load _ -> not loop_has_memory_effects
              | Ir.Store _ | Ir.Call _ | Ir.Alloca _ | Ir.Phi _ -> false
            in
            pure_ok
            && not (List.exists in_loop_def (Ir.instr_operands i.kind))
          in
          (* Iterate: hoisting one instruction can make its users
             hoistable. Hoisting a load out of a loop with no stores is
             safe even if the loop may run zero times only for loads from
             provably allocated memory; in this IR loads never trap, so
             zero-trip hoisting is value-safe (the result is then dead). *)
          let changed = ref true in
          while !changed do
            changed := false;
            du := Tfm_analysis.Defuse.build f;
            let pre = Ir.find_block f pre_label in
            List.iter
              (fun blk_label ->
                let blk = Ir.find_block f blk_label in
                let stay, move =
                  List.partition (fun i -> not (hoistable i)) blk.instrs
                in
                if move <> [] then begin
                  blk.instrs <- stay;
                  pre.instrs <- pre.instrs @ move;
                  hoisted := !hoisted + List.length move;
                  changed := true
                end)
              loop.body
          done)
    (Tfm_analysis.Loops.loops loop_info);
  !hoisted

let simplify_cfg (f : Ir.func) =
  let changes = ref 0 in
  (* 1. Fold constant conditional branches. *)
  List.iter
    (fun (b : Ir.block) ->
      match b.term with
      | Ir.Cbr (Ir.Const c, t', e) ->
          b.term <- Ir.Br (if c <> 0 then t' else e);
          incr changes
      | Ir.Cbr (_, t', e) when t' = e ->
          b.term <- Ir.Br t';
          incr changes
      | _ -> ())
    f.blocks;
  (* 2. Thread branches through empty forwarding blocks (no instructions,
     unconditional branch), as long as doing so cannot confuse phis: we
     only thread when the ultimate target has no phis. *)
  let target_of label =
    match Ir.find_block f label with
    | { instrs = []; term = Ir.Br next; _ } when next <> label -> Some next
    | _ | (exception Not_found) -> None
  in
  let has_phis label =
    match Ir.find_block f label with
    | b ->
        List.exists
          (fun (i : Ir.instr) ->
            match i.kind with Ir.Phi _ -> true | _ -> false)
          b.instrs
    | exception Not_found -> false
  in
  let thread label =
    match target_of label with
    | Some next when not (has_phis next) ->
        incr changes;
        next
    | _ -> label
  in
  List.iter
    (fun (b : Ir.block) ->
      b.term <-
        (match b.term with
        | Ir.Br l -> Ir.Br (thread l)
        | Ir.Cbr (c, t', e) -> Ir.Cbr (c, thread t', thread e)
        | (Ir.Ret _ | Ir.Unreachable) as t' -> t'))
    f.blocks;
  (* 3. Remove unreachable blocks and prune phi arms that referenced
     them. *)
  let cfg = Cfg.build f in
  let reachable = Cfg.reachable cfg in
  let is_reachable l = List.mem l reachable in
  let removed = List.filter (fun (b : Ir.block) -> not (is_reachable b.label)) f.blocks in
  if removed <> [] then begin
    changes := !changes + List.length removed;
    let dead = List.map (fun (b : Ir.block) -> b.label) removed in
    f.blocks <-
      List.filter (fun (b : Ir.block) -> is_reachable b.label) f.blocks;
    List.iter
      (fun (b : Ir.block) ->
        b.instrs <-
          List.map
            (fun (i : Ir.instr) ->
              match i.kind with
              | Ir.Phi incoming ->
                  {
                    i with
                    kind =
                      Ir.Phi
                        (List.filter
                           (fun (l, _) -> not (List.mem l dead))
                           incoming);
                  }
              | _ -> i)
            b.instrs)
      f.blocks
  end;
  !changes

let simplify_trivial_phis (f : Ir.func) =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let subst = Hashtbl.create 8 in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun (i : Ir.instr) ->
            match i.Ir.kind with
            | Ir.Phi incoming -> begin
                let values =
                  List.sort_uniq compare
                    (List.filter_map
                       (fun (_, v) ->
                         match v with
                         | Ir.Reg id when id = i.Ir.id -> None
                         | v -> Some v)
                       incoming)
                in
                match values with
                | [ v ] -> begin
                    (* avoid same-round substitution cycles between two
                       mutually-trivial phis (an undef loop): defer the
                       second one to the next round *)
                    match v with
                    | Ir.Reg vid when Hashtbl.mem subst vid -> ()
                    | _ -> Hashtbl.replace subst i.Ir.id v
                  end
                | _ -> ()
              end
            | _ -> ())
          b.instrs)
      f.blocks;
    if Hashtbl.length subst > 0 then begin
      removed := !removed + Hashtbl.length subst;
      changed := true;
      substitute f subst;
      List.iter
        (fun (b : Ir.block) ->
          b.instrs <-
            List.filter
              (fun (i : Ir.instr) -> not (Hashtbl.mem subst i.Ir.id))
              b.instrs)
        f.blocks
    end
  done;
  !removed

let run_o1 (m : Ir.modul) =
  let total = ref 0 in
  let round () =
    List.fold_left
      (fun acc f ->
        acc + constant_fold f + cse f + licm f + simplify_trivial_phis f
        + dce f + simplify_cfg f)
      0 m.Ir.funcs
  in
  let rec go () =
    let n = round () in
    total := !total + n;
    if n > 0 then go ()
  in
  go ();
  Verifier.check_module m;
  !total


