lib/workloads/hashmap.ml: Builder Bytes Int32 Ir Tfm_util Verifier
