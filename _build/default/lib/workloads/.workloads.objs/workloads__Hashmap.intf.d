lib/workloads/hashmap.mli: Bytes Ir
