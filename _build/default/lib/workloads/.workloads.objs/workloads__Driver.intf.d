lib/workloads/driver.mli: Bytes Clock Cost_model Ir Profile Trackfm
