lib/workloads/memcached.ml: Builder Bytes Int32 Ir Tfm_util Verifier
