lib/workloads/kmeans.ml: Array Builder Ir Verifier
