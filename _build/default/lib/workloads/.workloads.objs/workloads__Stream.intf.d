lib/workloads/stream.mli: Ir
