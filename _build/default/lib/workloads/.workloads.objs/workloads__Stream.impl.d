lib/workloads/stream.ml: Builder Ir Verifier
