lib/workloads/memcached.mli: Bytes Ir
