lib/workloads/analytics.mli: Clock Cost_model Ir
