lib/workloads/analytics.ml: Aifm Array Builder Clock Cost_model Ir Memstore Verifier
