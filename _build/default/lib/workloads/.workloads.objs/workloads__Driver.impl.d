lib/workloads/driver.ml: Array Backend Bytes Char Clock Cost_model Hashtbl Interp List Memstore Printf Profile Trackfm
