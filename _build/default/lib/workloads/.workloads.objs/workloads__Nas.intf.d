lib/workloads/nas.mli: Ir
