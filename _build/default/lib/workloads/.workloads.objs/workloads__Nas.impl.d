lib/workloads/nas.ml: Array Builder Ir Verifier
