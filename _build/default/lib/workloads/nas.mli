(** NAS parallel benchmark kernels (Section 4.5, Figure 17, Table 3).

    Serial C++-style memory-access skeletons of the five NAS benchmarks
    the paper evaluates, scaled from their multi-GB classes to simulator
    sizes (the sweep axis is percent-of-working-set, so shapes carry):

    - {b CG}: conjugate-gradient core — CSR sparse mat-vec with an
      irregular gather on the vector, plus unit-stride vector updates;
    - {b FT}: 3-D FFT-like passes — sweeps along all three dimensions
      (unit, [nx], [nx*ny] strides) over an interleaved complex grid,
      written with the redundant loads typical of unoptimized bitcode
      (the O1 pre-pass removes them; Figure 17b);
    - {b IS}: integer bucket sort — histogram, prefix sum, scatter;
    - {b MG}: multigrid — 7-point stencil smoothing at two grid levels
      with restriction/prolongation;
    - {b SP}: scalar penta-diagonal-style line sweeps along each
      dimension with loop-carried dependences and redundant loads.

    Every kernel returns a quantized checksum that the OCaml reference
    ({!checksum}) reproduces exactly. *)

type kernel = CG | FT | IS | MG | SP

val kernel_name : kernel -> string
val all_kernels : kernel list

type params = {
  kernel : kernel;
  scale : int;
      (** linear size knob; [default_params] maps it so working sets are
          a few MiB, with the same cross-kernel ratios as Table 3 *)
}

val default_params : kernel -> params

val build : params -> unit -> Ir.modul

val working_set_bytes : params -> int

val checksum : params -> int

val paper_memory_gb : kernel -> int
(** Table 3's memory column (for reporting). *)

val paper_loc : kernel -> int
(** Table 3's lines-of-code column (for reporting). *)
