(** NYC-taxi-style dataframe analytics (Section 4.5, Figures 14 and 15).

    A columnar dataframe of synthetic taxi trips and the query mix of the
    paper's Kaggle-derived benchmark: whole-column scans (mean distance,
    max fare, passenger-count histogram — tight loops, high spatial
    locality, no temporal reuse) followed by a group-by aggregation whose
    per-group loops iterate small collections of rows — the low-density
    loops that make indiscriminate chunking a loss in Figure 15.

    Three implementations share bit-identical arithmetic:
    - {!build}: the IR program (compiled by TrackFM, or run untransformed
      on the local/Fastswap backends);
    - {!run_aifm}: the hand-ported library version over {!Aifm.Remote}
      arrays, the paper's AIFM comparison line;
    - {!checksum}: the host reference. *)

type params = {
  rows : int;
  groups : int; (** distinct group keys in the group-by (rows/12 gives the
                    paper-like short per-group loops) *)
  agg_repeat : int;
      (** how many times the per-group aggregation phases run (EDA
          notebooks re-aggregate the same frame repeatedly); weights the
          Figure 15 short loops *)
}

val default_params : rows:int -> params
(** groups = rows/12, agg_repeat = 3. *)

val build : params -> unit -> Ir.modul

val working_set_bytes : params -> int

val checksum : params -> int

val run_aifm :
  ?cost:Cost_model.t ->
  ?object_size:int ->
  local_budget:int ->
  params ->
  int * Clock.t
(** Execute the AIFM port against a fresh simulated cluster; returns the
    checksum (must equal {!checksum}) and the clock with cycles and
    transfer counters. The measured region excludes dataframe
    construction, like the IR program's [!bench_begin]. *)
