type kernel = CG | FT | IS | MG | SP

let kernel_name = function
  | CG -> "cg"
  | FT -> "ft"
  | IS -> "is"
  | MG -> "mg"
  | SP -> "sp"

let all_kernels = [ CG; FT; IS; MG; SP ]

type params = { kernel : kernel; scale : int }

(* Table 3 proportions: CG 9 GB, FT 6, IS 34, MG 27, SP 12. The default
   scales put each kernel at a few MiB with roughly those ratios. *)
let default_params kernel = { kernel; scale = 1 }

let paper_memory_gb = function CG -> 9 | FT -> 6 | IS -> 34 | MG -> 27 | SP -> 12
let paper_loc = function CG -> 586 | FT -> 756 | IS -> 558 | MG -> 941 | SP -> 2013

let checksum_mask = 0x3FFFFFFF

(* -- per-kernel geometry -------------------------------------------------- *)

let cg_n scale = 12_000 * scale
let cg_nnz = 40
let ft_dim scale = 40 * scale (* nx = ny = nz *)
let is_n scale = 600_000 * scale
let is_buckets = 2048
let mg_dim scale = 40 * scale
let sp_dim scale = 56 * scale

let working_set_bytes p =
  match p.kernel with
  | CG ->
      let n = cg_n p.scale in
      (n * cg_nnz * (8 + 4)) + (5 * n * 8)
  | FT ->
      let d = ft_dim p.scale in
      d * d * d * 16
  | IS ->
      let n = is_n p.scale in
      (2 * n * 4) + (2 * is_buckets * 8)
  | MG ->
      let d = mg_dim p.scale in
      let fine = d * d * d * 8 in
      let coarse = d / 2 * (d / 2) * (d / 2) * 8 in
      (2 * fine) + coarse
  | SP ->
      let d = sp_dim p.scale in
      2 * d * d * d * 8

(* ========================= CG ========================= *)

let cg_col n i j = ((i * 7) + (j * 131)) mod n
let cg_val i j = float_of_int (((i + j) mod 10) + 1)

let cg_iters = 4

let build_cg ~n b =
  let vals = Builder.call b "malloc" [ Ir.Const (n * cg_nnz * 8) ] in
  let cols = Builder.call b "malloc" [ Ir.Const (n * cg_nnz * 4) ] in
  let x = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let z = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let r = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let p = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let q = Builder.call b "malloc" [ Ir.Const (n * 8) ] in
  let fvec arr i = Builder.gep b arr ~index:i ~scale:8 () in
  ignore fvec;
  Builder.for_loop b ~hint:"cg.init" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      (* non-uniform rhs so the solve does not converge degenerately *)
      let xv =
        Builder.fbinop b Ir.Fmul
          (Builder.si_to_fp b
             (Builder.add b (Builder.binop b Ir.Srem i (Ir.Const 13))
                (Ir.Const 1)))
          (Ir.Constf 0.25)
      in
      Builder.store b ~is_float:true xv
        ~ptr:(Builder.gep b x ~index:i ~scale:8 ());
      Builder.for_loop b ~hint:"cg.initj" ~init:(Ir.Const 0)
        ~bound:(Ir.Const cg_nnz) (fun b j ->
          let e = Builder.add b (Builder.mul b i (Ir.Const cg_nnz)) j in
          let col =
            Builder.binop b Ir.Srem
              (Builder.add b
                 (Builder.mul b i (Ir.Const 7))
                 (Builder.mul b j (Ir.Const 131)))
              (Ir.Const n)
          in
          Builder.store b ~size:4 col
            ~ptr:(Builder.gep b cols ~index:e ~scale:4 ());
          let v =
            Builder.si_to_fp b
              (Builder.add b
                 (Builder.binop b Ir.Srem (Builder.add b i j) (Ir.Const 10))
                 (Ir.Const 1))
          in
          Builder.store b ~is_float:true v
            ~ptr:(Builder.gep b vals ~index:e ~scale:8 ())));
  ignore (Builder.call b "!bench_begin" []);
  (* The NAS CG inner solve: z = 0, r = x, p = r; then cg_iters rounds of
     q = A p; alpha = rho / (p.q); z += alpha p; r -= alpha q;
     beta = rho'/rho; p = r + beta p. Scalars are carried in a small heap
     cell the way the Fortran-derived C code keeps them in memory. *)
  let scal = Builder.call b "malloc" [ Ir.Const 16 ] in
  (* scal[0] = rho *)
  let rho0 =
    Builder.for_loop_acc b ~hint:"cg.rho0" ~init:(Ir.Const 0)
      ~bound:(Ir.Const n) ~accs:[ Ir.Constf 0.0 ]
      (fun b ~iv:i ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        let xv = Builder.load b ~is_float:true (Builder.gep b x ~index:i ~scale:8 ()) in
        Builder.store b ~is_float:true (Ir.Constf 0.0)
          ~ptr:(Builder.gep b z ~index:i ~scale:8 ());
        Builder.store b ~is_float:true xv
          ~ptr:(Builder.gep b r ~index:i ~scale:8 ());
        Builder.store b ~is_float:true xv
          ~ptr:(Builder.gep b p ~index:i ~scale:8 ());
        [ Builder.fbinop b Ir.Fadd acc (Builder.fbinop b Ir.Fmul xv xv) ])
  in
  let rho0 = match rho0 with [ a ] -> a | _ -> assert false in
  Builder.store b ~is_float:true rho0 ~ptr:scal;
  Builder.for_loop b ~hint:"cg.iter" ~init:(Ir.Const 0)
    ~bound:(Ir.Const cg_iters) (fun b _it ->
      (* q = A p : the CSR mat-vec with the irregular gather on p *)
      Builder.for_loop b ~hint:"cg.row" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
        (fun b i ->
          let rbase = Builder.mul b i (Ir.Const cg_nnz) in
          let sums =
            Builder.for_loop_acc b ~hint:"cg.nnz" ~init:(Ir.Const 0)
              ~bound:(Ir.Const cg_nnz) ~accs:[ Ir.Constf 0.0 ]
              (fun b ~iv:j ~accs ->
                let sacc = match accs with [ a ] -> a | _ -> assert false in
                let e = Builder.add b rbase j in
                let a =
                  Builder.load b ~is_float:true
                    (Builder.gep b vals ~index:e ~scale:8 ())
                in
                let c =
                  Builder.load b ~size:4
                    (Builder.gep b cols ~index:e ~scale:4 ())
                in
                let pv =
                  Builder.load b ~is_float:true
                    (Builder.gep b p ~index:c ~scale:8 ())
                in
                [ Builder.fbinop b Ir.Fadd sacc (Builder.fbinop b Ir.Fmul a pv) ])
          in
          let sum = match sums with [ a ] -> a | _ -> assert false in
          (* strong diagonal keeps the solve bounded (the NAS generator
             makes A diagonally dominant the same way) *)
          let pv_i =
            Builder.load b ~is_float:true (Builder.gep b p ~index:i ~scale:8 ())
          in
          let sum =
            Builder.fbinop b Ir.Fadd sum
              (Builder.fbinop b Ir.Fmul (Ir.Constf 500.0) pv_i)
          in
          Builder.store b ~is_float:true sum
            ~ptr:(Builder.gep b q ~index:i ~scale:8 ()));
      (* d = p . q *)
      let daccs =
        Builder.for_loop_acc b ~hint:"cg.dot" ~init:(Ir.Const 0)
          ~bound:(Ir.Const n) ~accs:[ Ir.Constf 0.0 ]
          (fun b ~iv:i ~accs ->
            let acc = match accs with [ a ] -> a | _ -> assert false in
            let pv = Builder.load b ~is_float:true (Builder.gep b p ~index:i ~scale:8 ()) in
            let qv = Builder.load b ~is_float:true (Builder.gep b q ~index:i ~scale:8 ()) in
            [ Builder.fbinop b Ir.Fadd acc (Builder.fbinop b Ir.Fmul pv qv) ])
      in
      let d = match daccs with [ a ] -> a | _ -> assert false in
      let rho = Builder.load b ~is_float:true scal in
      let alpha = Builder.fbinop b Ir.Fdiv rho d in
      (* z += alpha p ; r -= alpha q ; rho' = r.r *)
      let rho'accs =
        Builder.for_loop_acc b ~hint:"cg.axpy" ~init:(Ir.Const 0)
          ~bound:(Ir.Const n) ~accs:[ Ir.Constf 0.0 ]
          (fun b ~iv:i ~accs ->
            let acc = match accs with [ a ] -> a | _ -> assert false in
            let zp = Builder.gep b z ~index:i ~scale:8 () in
            let rp = Builder.gep b r ~index:i ~scale:8 () in
            let pv = Builder.load b ~is_float:true (Builder.gep b p ~index:i ~scale:8 ()) in
            let qv = Builder.load b ~is_float:true (Builder.gep b q ~index:i ~scale:8 ()) in
            let zv = Builder.load b ~is_float:true zp in
            let rv = Builder.load b ~is_float:true rp in
            let zv' = Builder.fbinop b Ir.Fadd zv (Builder.fbinop b Ir.Fmul alpha pv) in
            let rv' = Builder.fbinop b Ir.Fsub rv (Builder.fbinop b Ir.Fmul alpha qv) in
            Builder.store b ~is_float:true zv' ~ptr:zp;
            Builder.store b ~is_float:true rv' ~ptr:rp;
            [ Builder.fbinop b Ir.Fadd acc (Builder.fbinop b Ir.Fmul rv' rv') ])
      in
      let rho' = match rho'accs with [ a ] -> a | _ -> assert false in
      let beta = Builder.fbinop b Ir.Fdiv rho' rho in
      Builder.store b ~is_float:true rho' ~ptr:scal;
      (* p = r + beta p *)
      Builder.for_loop b ~hint:"cg.pupd" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
        (fun b i ->
          let pp = Builder.gep b p ~index:i ~scale:8 () in
          let rv = Builder.load b ~is_float:true (Builder.gep b r ~index:i ~scale:8 ()) in
          let pv = Builder.load b ~is_float:true pp in
          Builder.store b ~is_float:true
            (Builder.fbinop b Ir.Fadd rv (Builder.fbinop b Ir.Fmul beta pv))
            ~ptr:pp));
  (* checksum over the solution vector *)
  let accs =
    Builder.for_loop_acc b ~hint:"cg.ck" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~accs:[ Ir.Constf 0.0 ]
      (fun b ~iv:i ~accs ->
        let acc = match accs with [ a ] -> a | _ -> assert false in
        let zv = Builder.load b ~is_float:true (Builder.gep b z ~index:i ~scale:8 ()) in
        [ Builder.fbinop b Ir.Fadd acc zv ])
  in
  let sum = match accs with [ a ] -> a | _ -> assert false in
  Builder.binop b Ir.And
    (Builder.fp_to_si b (Builder.fbinop b Ir.Fmul sum (Ir.Constf 1e6)))
    (Ir.Const checksum_mask)

let checksum_cg ~n =
  let x = Array.init n (fun i -> float_of_int ((i mod 13) + 1) *. 0.25) in
  let z = Array.make n 0.0 in
  let r = Array.make n 0.0 in
  let p = Array.make n 0.0 in
  let q = Array.make n 0.0 in
  let rho = ref 0.0 in
  for i = 0 to n - 1 do
    let xv = x.(i) in
    z.(i) <- 0.0;
    r.(i) <- xv;
    p.(i) <- xv;
    rho := !rho +. (xv *. xv)
  done;
  for _it = 0 to cg_iters - 1 do
    for i = 0 to n - 1 do
      let s = ref 0.0 in
      for j = 0 to cg_nnz - 1 do
        s := !s +. (cg_val i j *. p.(cg_col n i j))
      done;
      q.(i) <- !s +. (500.0 *. p.(i))
    done;
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      d := !d +. (p.(i) *. q.(i))
    done;
    let alpha = !rho /. !d in
    let rho' = ref 0.0 in
    for i = 0 to n - 1 do
      z.(i) <- z.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. q.(i));
      rho' := !rho' +. (r.(i) *. r.(i))
    done;
    let beta = !rho' /. !rho in
    rho := !rho';
    for i = 0 to n - 1 do
      p.(i) <- r.(i) +. (beta *. p.(i))
    done
  done;
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. z.(i)
  done;
  int_of_float (!s *. 1e6) land checksum_mask

(* ========================= FT ========================= *)

(* One sweep per dimension. The element update is written naively: the
   real and imaginary parts are each loaded twice (as unoptimized
   bitcode does after macro expansion); O1's CSE halves the loads. *)
let ft_c = 0.8
let ft_s = 0.6

let build_ft ~d b =
  let total = d * d * d in
  let grid = Builder.call b "malloc" [ Ir.Const (total * 16) ] in
  Builder.for_loop b ~hint:"ft.init" ~init:(Ir.Const 0) ~bound:(Ir.Const total)
    (fun b i ->
      let re = Builder.si_to_fp b (Builder.binop b Ir.Srem i (Ir.Const 97)) in
      let im = Builder.si_to_fp b (Builder.binop b Ir.Srem i (Ir.Const 89)) in
      Builder.store b ~is_float:true re
        ~ptr:(Builder.gep b grid ~index:i ~scale:16 ());
      Builder.store b ~is_float:true im
        ~ptr:(Builder.gep b grid ~index:i ~scale:16 ~offset:8 ()));
  ignore (Builder.call b "!bench_begin" []);
  let sweep stride hint =
    (* Deeply nested: plane / line / element, with the stride of the
       dimension being transformed. *)
    let outer = total / (d * 1) in
    ignore outer;
    Builder.for_loop b ~hint:(hint ^ ".a") ~init:(Ir.Const 0)
      ~bound:(Ir.Const (total / d)) (fun b line ->
        (* base index of this line *)
        let base =
          if stride = 1 then Builder.mul b line (Ir.Const d)
          else begin
            (* lines along a strided dim: base enumerates the other dims *)
            let per = stride in
            let blk = Builder.binop b Ir.Sdiv line (Ir.Const per) in
            let rem = Builder.binop b Ir.Srem line (Ir.Const per) in
            Builder.add b (Builder.mul b blk (Ir.Const (per * d))) rem
          end
        in
        (* FT walks raw pointers through the line (as pointer-heavy FFT
           codes do); the base of each access is the loop-carried pointer
           itself, which defeats the strided-access analysis — the
           "confounded loop analysis" the paper reports for FT. *)
        let rptr0 = Builder.gep b grid ~index:base ~scale:16 () in
        let finals =
          Builder.for_loop_acc b ~hint:(hint ^ ".e") ~init:(Ir.Const 0)
            ~bound:(Ir.Const d) ~accs:[ rptr0 ]
            (fun b ~iv:_ ~accs ->
            let rptr = match accs with [ p ] -> p | _ -> assert false in
            let iptr = Builder.gep b rptr ~index:(Ir.Const 0) ~scale:1 ~offset:8 () in
            (* Redundant and dead loads on purpose: this is what naive
               macro-expanded complex arithmetic looks like before any
               cleanup, and each load gets a guard. *)
            let re1 = Builder.load b ~is_float:true rptr in
            let im1 = Builder.load b ~is_float:true iptr in
            let re2 = Builder.load b ~is_float:true rptr in
            let im2 = Builder.load b ~is_float:true iptr in
            let _dead_re = Builder.load b ~is_float:true rptr in
            let _dead_im = Builder.load b ~is_float:true iptr in
            ignore _dead_re;
            ignore _dead_im;
            let re' =
              Builder.fbinop b Ir.Fsub
                (Builder.fbinop b Ir.Fmul re1 (Ir.Constf ft_c))
                (Builder.fbinop b Ir.Fmul im1 (Ir.Constf ft_s))
            in
            let im' =
              Builder.fbinop b Ir.Fadd
                (Builder.fbinop b Ir.Fmul re2 (Ir.Constf ft_s))
                (Builder.fbinop b Ir.Fmul im2 (Ir.Constf ft_c))
            in
            Builder.store b ~is_float:true re' ~ptr:rptr;
            Builder.store b ~is_float:true im' ~ptr:iptr;
            [ Builder.gep b rptr ~index:(Ir.Const stride) ~scale:16 () ])
        in
        ignore finals)
  in
  sweep 1 "ft.x";
  sweep d "ft.y";
  sweep (d * d) "ft.z";
  let accs =
    Builder.for_loop_acc b ~hint:"ft.ck" ~init:(Ir.Const 0)
      ~bound:(Ir.Const total) ~accs:[ Ir.Constf 0.0 ]
      (fun b ~iv:i ~accs ->
        let s = match accs with [ s ] -> s | _ -> assert false in
        let re = Builder.load b ~is_float:true (Builder.gep b grid ~index:i ~scale:16 ()) in
        [ Builder.fbinop b Ir.Fadd s re ])
  in
  let s = match accs with [ s ] -> s | _ -> assert false in
  Builder.binop b Ir.And
    (Builder.fp_to_si b (Builder.fbinop b Ir.Fdiv s (Ir.Constf 1000.0)))
    (Ir.Const checksum_mask)

let checksum_ft ~d =
  let total = d * d * d in
  let re = Array.init total (fun i -> float_of_int (i mod 97)) in
  let im = Array.init total (fun i -> float_of_int (i mod 89)) in
  let sweep stride =
    for line = 0 to (total / d) - 1 do
      let base =
        if stride = 1 then line * d
        else (line / stride * (stride * d)) + (line mod stride)
      in
      for e = 0 to d - 1 do
        let idx = base + (e * stride) in
        let r = re.(idx) and i' = im.(idx) in
        re.(idx) <- (r *. ft_c) -. (i' *. ft_s);
        im.(idx) <- (r *. ft_s) +. (i' *. ft_c)
      done
    done
  in
  sweep 1;
  sweep d;
  sweep (d * d);
  let s = ref 0.0 in
  for i = 0 to total - 1 do
    s := !s +. re.(i)
  done;
  int_of_float (!s /. 1000.0) land checksum_mask

(* ========================= IS ========================= *)

let is_key i = i * 2654435761 land (is_buckets - 1)

let build_is ~n b =
  let keys = Builder.call b "malloc" [ Ir.Const (n * 4) ] in
  let sorted = Builder.call b "malloc" [ Ir.Const (n * 4) ] in
  let hist = Builder.call b "calloc" [ Ir.Const is_buckets; Ir.Const 8 ] in
  let off = Builder.call b "calloc" [ Ir.Const (is_buckets + 1); Ir.Const 8 ] in
  Builder.for_loop b ~hint:"is.init" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let k =
        Builder.binop b Ir.And
          (Builder.mul b i (Ir.Const 2654435761))
          (Ir.Const (is_buckets - 1))
      in
      Builder.store b ~size:4 k ~ptr:(Builder.gep b keys ~index:i ~scale:4 ()));
  ignore (Builder.call b "!bench_begin" []);
  Builder.for_loop b ~hint:"is.count" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let k = Builder.load b ~size:4 (Builder.gep b keys ~index:i ~scale:4 ()) in
      let hptr = Builder.gep b hist ~index:k ~scale:8 () in
      let c = Builder.load b hptr in
      Builder.store b (Builder.add b c (Ir.Const 1)) ~ptr:hptr);
  let offaccs =
    Builder.for_loop_acc b ~hint:"is.off" ~init:(Ir.Const 0)
      ~bound:(Ir.Const is_buckets) ~accs:[ Ir.Const 0 ]
      (fun b ~iv:k ~accs ->
        let run = match accs with [ s ] -> s | _ -> assert false in
        Builder.store b run ~ptr:(Builder.gep b off ~index:k ~scale:8 ());
        let c = Builder.load b (Builder.gep b hist ~index:k ~scale:8 ()) in
        [ Builder.add b run c ])
  in
  ignore offaccs;
  Builder.for_loop b ~hint:"is.scatter" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b i ->
      let k = Builder.load b ~size:4 (Builder.gep b keys ~index:i ~scale:4 ()) in
      let optr = Builder.gep b off ~index:k ~scale:8 () in
      let slot = Builder.load b optr in
      Builder.store b ~size:4 k
        ~ptr:(Builder.gep b sorted ~index:slot ~scale:4 ());
      Builder.store b (Builder.add b slot (Ir.Const 1)) ~ptr:optr);
  let accs =
    Builder.for_loop_acc b ~hint:"is.ck" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
      ~step:97 ~accs:[ Ir.Const 0 ]
      (fun b ~iv:i ~accs ->
        let s = match accs with [ s ] -> s | _ -> assert false in
        let v = Builder.load b ~size:4 (Builder.gep b sorted ~index:i ~scale:4 ()) in
        [ Builder.binop b Ir.And
            (Builder.add b (Builder.mul b s (Ir.Const 33)) v)
            (Ir.Const checksum_mask) ])
  in
  match accs with [ s ] -> s | _ -> assert false

let checksum_is ~n =
  let keys = Array.init n is_key in
  let hist = Array.make is_buckets 0 in
  Array.iter (fun k -> hist.(k) <- hist.(k) + 1) keys;
  let off = Array.make (is_buckets + 1) 0 in
  let run = ref 0 in
  for k = 0 to is_buckets - 1 do
    off.(k) <- !run;
    run := !run + hist.(k)
  done;
  let sorted = Array.make n 0 in
  Array.iter
    (fun k ->
      sorted.(off.(k)) <- k;
      off.(k) <- off.(k) + 1)
    keys;
  let s = ref 0 in
  let i = ref 0 in
  while !i < n do
    s := ((!s * 33) + sorted.(!i)) land checksum_mask;
    i := !i + 97
  done;
  !s

(* ========================= MG ========================= *)

let build_mg ~d b =
  let total = d * d * d in
  let dc = d / 2 in
  let ctotal = dc * dc * dc in
  let u = Builder.call b "malloc" [ Ir.Const (total * 8) ] in
  let r = Builder.call b "malloc" [ Ir.Const (total * 8) ] in
  let uc = Builder.call b "malloc" [ Ir.Const (ctotal * 8) ] in
  Builder.for_loop b ~hint:"mg.init" ~init:(Ir.Const 0) ~bound:(Ir.Const total)
    (fun b i ->
      Builder.store b ~is_float:true
        (Builder.si_to_fp b (Builder.binop b Ir.Srem i (Ir.Const 11)))
        ~ptr:(Builder.gep b r ~index:i ~scale:8 ());
      Builder.store b ~is_float:true (Ir.Constf 0.0)
        ~ptr:(Builder.gep b u ~index:i ~scale:8 ()));
  ignore (Builder.call b "!bench_begin" []);
  (* Smoothing sweep over interior points: 7-point stencil on r into u. *)
  let smooth () =
    Builder.for_loop b ~hint:"mg.z" ~init:(Ir.Const 1) ~bound:(Ir.Const (d - 1))
      (fun b z ->
        Builder.for_loop b ~hint:"mg.y" ~init:(Ir.Const 1)
          ~bound:(Ir.Const (d - 1)) (fun b y ->
            let plane = Builder.mul b z (Ir.Const (d * d)) in
            let row = Builder.mul b y (Ir.Const d) in
            let base = Builder.add b plane row in
            Builder.for_loop b ~hint:"mg.x" ~init:(Ir.Const 1)
              ~bound:(Ir.Const (d - 1)) (fun b x ->
                let idx = Builder.add b base x in
                let at off =
                  Builder.load b ~is_float:true
                    (Builder.gep b r ~index:idx ~scale:8 ~offset:(off * 8) ())
                in
                let c = at 0 in
                let sum1 = Builder.fbinop b Ir.Fadd (at 1) (at (-1)) in
                let sum2 = Builder.fbinop b Ir.Fadd (at d) (at (-d)) in
                let sum3 =
                  Builder.fbinop b Ir.Fadd (at (d * d)) (at (-(d * d)))
                in
                let nb =
                  Builder.fbinop b Ir.Fadd sum1 (Builder.fbinop b Ir.Fadd sum2 sum3)
                in
                let v =
                  Builder.fbinop b Ir.Fadd
                    (Builder.fbinop b Ir.Fmul c (Ir.Constf 0.5))
                    (Builder.fbinop b Ir.Fmul nb (Ir.Constf 0.08333333))
                in
                Builder.store b ~is_float:true v
                  ~ptr:(Builder.gep b u ~index:idx ~scale:8 ()))))
  in
  smooth ();
  (* Restriction: coarse = average of 2x2x2 fine cells (strided gathers). *)
  Builder.for_loop b ~hint:"mg.rz" ~init:(Ir.Const 0) ~bound:(Ir.Const dc)
    (fun b z ->
      Builder.for_loop b ~hint:"mg.ry" ~init:(Ir.Const 0) ~bound:(Ir.Const dc)
        (fun b y ->
          Builder.for_loop b ~hint:"mg.rx" ~init:(Ir.Const 0)
            ~bound:(Ir.Const dc) (fun b x ->
              let fz = Builder.mul b z (Ir.Const 2) in
              let fy = Builder.mul b y (Ir.Const 2) in
              let fx = Builder.mul b x (Ir.Const 2) in
              let fidx =
                Builder.add b
                  (Builder.add b
                     (Builder.mul b fz (Ir.Const (d * d)))
                     (Builder.mul b fy (Ir.Const d)))
                  fx
              in
              let at off =
                Builder.load b ~is_float:true
                  (Builder.gep b u ~index:fidx ~scale:8 ~offset:(off * 8) ())
              in
              let s =
                Builder.fbinop b Ir.Fadd
                  (Builder.fbinop b Ir.Fadd (at 0) (at 1))
                  (Builder.fbinop b Ir.Fadd (at d) (at (d * d)))
              in
              let cidx =
                Builder.add b
                  (Builder.add b
                     (Builder.mul b z (Ir.Const (dc * dc)))
                     (Builder.mul b y (Ir.Const dc)))
                  x
              in
              Builder.store b ~is_float:true
                (Builder.fbinop b Ir.Fmul s (Ir.Constf 0.25))
                ~ptr:(Builder.gep b uc ~index:cidx ~scale:8 ()))));
  (* Prolongation-ish correction: add coarse back into fine corners. *)
  Builder.for_loop b ~hint:"mg.pz" ~init:(Ir.Const 0) ~bound:(Ir.Const dc)
    (fun b z ->
      Builder.for_loop b ~hint:"mg.py" ~init:(Ir.Const 0) ~bound:(Ir.Const dc)
        (fun b y ->
          Builder.for_loop b ~hint:"mg.px" ~init:(Ir.Const 0)
            ~bound:(Ir.Const dc) (fun b x ->
              let cidx =
                Builder.add b
                  (Builder.add b
                     (Builder.mul b z (Ir.Const (dc * dc)))
                     (Builder.mul b y (Ir.Const dc)))
                  x
              in
              let cv =
                Builder.load b ~is_float:true
                  (Builder.gep b uc ~index:cidx ~scale:8 ())
              in
              let fidx =
                Builder.add b
                  (Builder.add b
                     (Builder.mul b (Builder.mul b z (Ir.Const 2))
                        (Ir.Const (d * d)))
                     (Builder.mul b (Builder.mul b y (Ir.Const 2)) (Ir.Const d)))
                  (Builder.mul b x (Ir.Const 2))
              in
              let fptr = Builder.gep b u ~index:fidx ~scale:8 () in
              let fv = Builder.load b ~is_float:true fptr in
              Builder.store b ~is_float:true
                (Builder.fbinop b Ir.Fadd fv
                   (Builder.fbinop b Ir.Fmul cv (Ir.Constf 0.5)))
                ~ptr:fptr)));
  smooth ();
  let total_v = total in
  let accs =
    Builder.for_loop_acc b ~hint:"mg.ck" ~init:(Ir.Const 0)
      ~bound:(Ir.Const total_v) ~step:61 ~accs:[ Ir.Constf 0.0 ]
      (fun b ~iv:i ~accs ->
        let s = match accs with [ s ] -> s | _ -> assert false in
        let v = Builder.load b ~is_float:true (Builder.gep b u ~index:i ~scale:8 ()) in
        [ Builder.fbinop b Ir.Fadd s v ])
  in
  let s = match accs with [ s ] -> s | _ -> assert false in
  Builder.binop b Ir.And
    (Builder.fp_to_si b (Builder.fbinop b Ir.Fmul s (Ir.Constf 4.0)))
    (Ir.Const checksum_mask)

let checksum_mg ~d =
  let total = d * d * d in
  let dc = d / 2 in
  let u = Array.make total 0.0 in
  let r = Array.init total (fun i -> float_of_int (i mod 11)) in
  let uc = Array.make (dc * dc * dc) 0.0 in
  let smooth () =
    for z = 1 to d - 2 do
      for y = 1 to d - 2 do
        for x = 1 to d - 2 do
          let idx = (z * d * d) + (y * d) + x in
          let c = r.(idx) in
          let sum1 = r.(idx + 1) +. r.(idx - 1) in
          let sum2 = r.(idx + d) +. r.(idx - d) in
          let sum3 = r.(idx + (d * d)) +. r.(idx - (d * d)) in
          let nb = sum1 +. (sum2 +. sum3) in
          u.(idx) <- (c *. 0.5) +. (nb *. 0.08333333)
        done
      done
    done
  in
  smooth ();
  for z = 0 to dc - 1 do
    for y = 0 to dc - 1 do
      for x = 0 to dc - 1 do
        let fidx = (2 * z * d * d) + (2 * y * d) + (2 * x) in
        let s = u.(fidx) +. u.(fidx + 1) +. (u.(fidx + d) +. u.(fidx + (d * d))) in
        uc.((z * dc * dc) + (y * dc) + x) <- s *. 0.25
      done
    done
  done;
  for z = 0 to dc - 1 do
    for y = 0 to dc - 1 do
      for x = 0 to dc - 1 do
        let cv = uc.((z * dc * dc) + (y * dc) + x) in
        let fidx = (2 * z * d * d) + (2 * y * d) + (2 * x) in
        u.(fidx) <- u.(fidx) +. (cv *. 0.5)
      done
    done
  done;
  smooth ();
  let s = ref 0.0 in
  let i = ref 0 in
  while !i < total do
    s := !s +. u.(!i);
    i := !i + 61
  done;
  int_of_float (!s *. 4.0) land checksum_mask

(* ========================= SP ========================= *)

(* Line sweeps with a loop-carried dependence (u[i] depends on u[i-1])
   along each dimension, plus the redundant loads of naive code. *)
let build_sp ~d b =
  let total = d * d * d in
  let u = Builder.call b "malloc" [ Ir.Const (total * 8) ] in
  let rhs = Builder.call b "malloc" [ Ir.Const (total * 8) ] in
  Builder.for_loop b ~hint:"sp.init" ~init:(Ir.Const 0) ~bound:(Ir.Const total)
    (fun b i ->
      let v = Builder.si_to_fp b (Builder.binop b Ir.Srem i (Ir.Const 13)) in
      Builder.store b ~is_float:true v
        ~ptr:(Builder.gep b u ~index:i ~scale:8 ());
      Builder.store b ~is_float:true
        (Builder.si_to_fp b (Builder.binop b Ir.Srem i (Ir.Const 7)))
        ~ptr:(Builder.gep b rhs ~index:i ~scale:8 ()));
  ignore (Builder.call b "!bench_begin" []);
  let sweep stride hint =
    Builder.for_loop b ~hint:(hint ^ ".line") ~init:(Ir.Const 0)
      ~bound:(Ir.Const (total / d)) (fun b line ->
        let base =
          if stride = 1 then Builder.mul b line (Ir.Const d)
          else begin
            let per = stride in
            let blk = Builder.binop b Ir.Sdiv line (Ir.Const per) in
            let rem = Builder.binop b Ir.Srem line (Ir.Const per) in
            Builder.add b (Builder.mul b blk (Ir.Const (per * d))) rem
          end
        in
        Builder.for_loop b ~hint:(hint ^ ".i") ~init:(Ir.Const 1)
          ~bound:(Ir.Const d) (fun b e ->
            let idx = Builder.add b base (Builder.mul b e (Ir.Const stride)) in
            let uptr = Builder.gep b u ~index:idx ~scale:8 () in
            let pptr = Builder.gep b u ~index:idx ~scale:8 ~offset:(-8 * stride) () in
            let rptr = Builder.gep b rhs ~index:idx ~scale:8 () in
            (* redundant loads: naive code reloads u[i-1] and rhs twice *)
            let prev1 = Builder.load b ~is_float:true pptr in
            let prev2 = Builder.load b ~is_float:true pptr in
            let rv1 = Builder.load b ~is_float:true rptr in
            let rv2 = Builder.load b ~is_float:true rptr in
            let cur = Builder.load b ~is_float:true uptr in
            let t1 = Builder.fbinop b Ir.Fmul prev1 (Ir.Constf 0.3) in
            let t2 = Builder.fbinop b Ir.Fmul prev2 (Ir.Constf 0.1) in
            let t3 = Builder.fbinop b Ir.Fmul rv1 (Ir.Constf 0.05) in
            let t4 = Builder.fbinop b Ir.Fmul rv2 (Ir.Constf 0.05) in
            let mix =
              Builder.fbinop b Ir.Fadd
                (Builder.fbinop b Ir.Fadd t1 t2)
                (Builder.fbinop b Ir.Fadd t3 t4)
            in
            let v =
              Builder.fbinop b Ir.Fadd
                (Builder.fbinop b Ir.Fmul cur (Ir.Constf 0.5))
                mix
            in
            Builder.store b ~is_float:true v ~ptr:uptr))
  in
  sweep 1 "sp.x";
  sweep d "sp.y";
  sweep (d * d) "sp.z";
  let accs =
    Builder.for_loop_acc b ~hint:"sp.ck" ~init:(Ir.Const 0)
      ~bound:(Ir.Const total) ~step:53 ~accs:[ Ir.Constf 0.0 ]
      (fun b ~iv:i ~accs ->
        let s = match accs with [ s ] -> s | _ -> assert false in
        let v = Builder.load b ~is_float:true (Builder.gep b u ~index:i ~scale:8 ()) in
        [ Builder.fbinop b Ir.Fadd s v ])
  in
  let s = match accs with [ s ] -> s | _ -> assert false in
  Builder.binop b Ir.And
    (Builder.fp_to_si b (Builder.fbinop b Ir.Fmul s (Ir.Constf 4.0)))
    (Ir.Const checksum_mask)

let checksum_sp ~d =
  let total = d * d * d in
  let u = Array.init total (fun i -> float_of_int (i mod 13)) in
  let rhs = Array.init total (fun i -> float_of_int (i mod 7)) in
  let sweep stride =
    for line = 0 to (total / d) - 1 do
      let base =
        if stride = 1 then line * d
        else (line / stride * (stride * d)) + (line mod stride)
      in
      for e = 1 to d - 1 do
        let idx = base + (e * stride) in
        let prev = u.(idx - stride) in
        let rv = rhs.(idx) in
        let t1 = prev *. 0.3 in
        let t2 = prev *. 0.1 in
        let t3 = rv *. 0.05 in
        let t4 = rv *. 0.05 in
        let mix = t1 +. t2 +. (t3 +. t4) in
        u.(idx) <- (u.(idx) *. 0.5) +. mix
      done
    done
  in
  sweep 1;
  sweep d;
  sweep (d * d);
  let s = ref 0.0 in
  let i = ref 0 in
  while !i < total do
    s := !s +. u.(!i);
    i := !i + 53
  done;
  int_of_float (!s *. 4.0) land checksum_mask

(* -- dispatch -------------------------------------------------------------- *)

let build p () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let ck =
    match p.kernel with
    | CG -> build_cg ~n:(cg_n p.scale) b
    | FT -> build_ft ~d:(ft_dim p.scale) b
    | IS -> build_is ~n:(is_n p.scale) b
    | MG -> build_mg ~d:(mg_dim p.scale) b
    | SP -> build_sp ~d:(sp_dim p.scale) b
  in
  Builder.ret b (Some ck);
  Verifier.check_module m;
  m

let checksum p =
  match p.kernel with
  | CG -> checksum_cg ~n:(cg_n p.scale)
  | FT -> checksum_ft ~d:(ft_dim p.scale)
  | IS -> checksum_is ~n:(is_n p.scale)
  | MG -> checksum_mg ~d:(mg_dim p.scale)
  | SP -> checksum_sp ~d:(sp_dim p.scale)
