(** STREAM (McCalpin) memory-bandwidth kernels as IR programs.

    The paper uses "Sum" ([sum += a2\[i\]]) and "Copy" ([a1\[i\] = a2\[i\]])
    over large integer arrays (Sections 4.1–4.3, Figures 7, 10, 11, 12);
    we add the classic Scale and Triad kernels for completeness. Arrays
    are heap-allocated through libc malloc so the TrackFM pipeline remotes
    them; elements default to 4-byte integers like the paper's.

    [checksum ~n ~kernel] gives the expected return value, letting tests
    prove the transformation preserved semantics under every backend. *)

type kernel = Sum | Copy | Scale | Triad

val kernel_name : kernel -> string
val kernel_of_string : string -> kernel option

val build : ?elem_size:int -> n:int -> kernel:kernel -> unit -> Ir.modul
(** One pass of the kernel over [n]-element arrays. The program returns a
    checksum derived from the kernel's output. *)

val working_set_bytes : ?elem_size:int -> n:int -> kernel:kernel -> unit -> int
(** Bytes of heap the program touches (arrays only). *)

val checksum : ?elem_size:int -> n:int -> kernel:kernel -> unit -> int
(** Expected program return value. *)

val source_value : int -> int
(** The synthetic element stored at index [i] during initialization. *)
