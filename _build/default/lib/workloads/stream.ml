type kernel = Sum | Copy | Scale | Triad

let kernel_name = function
  | Sum -> "sum"
  | Copy -> "copy"
  | Scale -> "scale"
  | Triad -> "triad"

let kernel_of_string = function
  | "sum" -> Some Sum
  | "copy" -> Some Copy
  | "scale" -> Some Scale
  | "triad" -> Some Triad
  | _ -> None

(* Source elements are small and deterministic so checksums are cheap to
   predict; masked to fit any supported element size. *)
let source_value i = ((i * 7) + 3) land 0x7FFF

let checksum_mask = 0x3FFFFFFF

let arrays_needed = function
  | Sum -> 1
  | Copy | Scale -> 2
  | Triad -> 3

let working_set_bytes ?(elem_size = 4) ~n ~kernel () =
  arrays_needed kernel * n * elem_size

let build ?(elem_size = 4) ~n ~kernel () =
  let m = Ir.create_module () in
  let b = Builder.create m ~name:"main" ~nparams:0 in
  let bytes = n * elem_size in
  let src = Builder.call b "malloc" [ Ir.Const bytes ] in
  (* Initialize the source array. *)
  Builder.for_loop b ~hint:"init" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
    (fun b iv ->
      let v =
        Builder.binop b Ir.And
          (Builder.add b (Builder.mul b iv (Ir.Const 7)) (Ir.Const 3))
          (Ir.Const 0x7FFF)
      in
      let p = Builder.gep b src ~index:iv ~scale:elem_size () in
      Builder.store b ~size:elem_size v ~ptr:p);
  ignore (Builder.call b "!bench_begin" []);
  let ret =
    match kernel with
    | Sum ->
        let accs =
          Builder.for_loop_acc b ~hint:"sum" ~init:(Ir.Const 0)
            ~bound:(Ir.Const n) ~accs:[ Ir.Const 0 ]
            (fun b ~iv ~accs ->
              let acc = match accs with [ a ] -> a | _ -> assert false in
              let p = Builder.gep b src ~index:iv ~scale:elem_size () in
              let x = Builder.load b ~size:elem_size p in
              [ Builder.binop b Ir.And (Builder.add b acc x)
                  (Ir.Const checksum_mask) ])
        in
        (match accs with [ a ] -> a | _ -> assert false)
    | Copy ->
        let dst = Builder.call b "malloc" [ Ir.Const bytes ] in
        Builder.for_loop b ~hint:"copy" ~init:(Ir.Const 0) ~bound:(Ir.Const n)
          (fun b iv ->
            let ps = Builder.gep b src ~index:iv ~scale:elem_size () in
            let pd = Builder.gep b dst ~index:iv ~scale:elem_size () in
            let x = Builder.load b ~size:elem_size ps in
            Builder.store b ~size:elem_size x ~ptr:pd);
        let last = Builder.gep b dst ~index:(Ir.Const (n - 1)) ~scale:elem_size () in
        let mid = Builder.gep b dst ~index:(Ir.Const (n / 2)) ~scale:elem_size () in
        let x1 = Builder.load b ~size:elem_size last in
        let x2 = Builder.load b ~size:elem_size mid in
        Builder.add b x1 x2
    | Scale ->
        let dst = Builder.call b "malloc" [ Ir.Const bytes ] in
        Builder.for_loop b ~hint:"scale" ~init:(Ir.Const 0)
          ~bound:(Ir.Const n) (fun b iv ->
            let ps = Builder.gep b src ~index:iv ~scale:elem_size () in
            let pd = Builder.gep b dst ~index:iv ~scale:elem_size () in
            let x = Builder.load b ~size:elem_size ps in
            let y =
              Builder.binop b Ir.And
                (Builder.mul b x (Ir.Const 3))
                (Ir.Const 0xFFFF)
            in
            Builder.store b ~size:elem_size y ~ptr:pd);
        let last = Builder.gep b dst ~index:(Ir.Const (n - 1)) ~scale:elem_size () in
        let mid = Builder.gep b dst ~index:(Ir.Const (n / 2)) ~scale:elem_size () in
        let x1 = Builder.load b ~size:elem_size last in
        let x2 = Builder.load b ~size:elem_size mid in
        Builder.add b x1 x2
    | Triad ->
        let b2 = Builder.call b "malloc" [ Ir.Const bytes ] in
        let dst = Builder.call b "malloc" [ Ir.Const bytes ] in
        Builder.for_loop b ~hint:"triad.fill" ~init:(Ir.Const 0)
          ~bound:(Ir.Const n) (fun b iv ->
            let v = Builder.binop b Ir.And iv (Ir.Const 0xFF) in
            let p = Builder.gep b b2 ~index:iv ~scale:elem_size () in
            Builder.store b ~size:elem_size v ~ptr:p);
        let accs =
          Builder.for_loop_acc b ~hint:"triad" ~init:(Ir.Const 0)
            ~bound:(Ir.Const n) ~accs:[ Ir.Const 0 ]
            (fun b ~iv ~accs ->
              let acc = match accs with [ a ] -> a | _ -> assert false in
              let ps = Builder.gep b src ~index:iv ~scale:elem_size () in
              let pc = Builder.gep b b2 ~index:iv ~scale:elem_size () in
              let pd = Builder.gep b dst ~index:iv ~scale:elem_size () in
              let x = Builder.load b ~size:elem_size ps in
              let c = Builder.load b ~size:elem_size pc in
              let y =
                Builder.binop b Ir.And
                  (Builder.add b x (Builder.mul b c (Ir.Const 3)))
                  (Ir.Const 0xFFFF)
              in
              Builder.store b ~size:elem_size y ~ptr:pd;
              [ Builder.binop b Ir.And (Builder.add b acc y)
                  (Ir.Const checksum_mask) ])
        in
        (match accs with [ a ] -> a | _ -> assert false)
  in
  Builder.ret b (Some ret);
  Verifier.check_module m;
  m

let checksum ?(elem_size = 4) ~n ~kernel () =
  ignore elem_size;
  match kernel with
  | Sum ->
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := (!acc + source_value i) land checksum_mask
      done;
      !acc
  | Copy -> source_value (n - 1) + source_value (n / 2)
  | Scale ->
      (source_value (n - 1) * 3 land 0xFFFF)
      + (source_value (n / 2) * 3 land 0xFFFF)
  | Triad ->
      let acc = ref 0 in
      for i = 0 to n - 1 do
        let y = (source_value i + (3 * (i land 0xFF))) land 0xFFFF in
        acc := (!acc + y) land checksum_mask
      done;
      !acc
