lib/shenango/sched.ml: Effect List
