lib/shenango/sched.mli:
