lib/util/rng.mli:
