lib/util/stats.mli:
