let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let scaled suffixes unit v =
  let rec pick v = function
    | [ last ] -> (v, last)
    | s :: rest -> if v < unit then (v, s) else pick (v /. unit) rest
    | [] -> assert false
  in
  pick v suffixes

let pp_bytes fmt n =
  let v, s =
    scaled [ "B"; "KiB"; "MiB"; "GiB"; "TiB" ] 1024.0 (float_of_int n)
  in
  if Float.is_integer v && v < 1024.0 then Format.fprintf fmt "%.0f%s" v s
  else Format.fprintf fmt "%.1f%s" v s

let bytes_to_string n = Format.asprintf "%a" pp_bytes n

let pp_cycles fmt n =
  let v, s = scaled [ "cyc"; "Kcyc"; "Mcyc"; "Gcyc" ] 1000.0 (float_of_int n) in
  if Float.is_integer v && v < 1000.0 then Format.fprintf fmt "%.0f%s" v s
  else Format.fprintf fmt "%.1f%s" v s

let cycles_to_string n = Format.asprintf "%a" pp_cycles n
