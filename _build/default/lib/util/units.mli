(** Byte-size units and formatting.

    Working sets in the simulation are expressed in bytes; sweeps are in
    percent-of-working-set, mirroring the paper's x axes. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val pp_bytes : Format.formatter -> int -> unit
(** Render e.g. [1536] as ["1.5KiB"]. *)

val bytes_to_string : int -> string

val pp_cycles : Format.formatter -> int -> unit
(** Render e.g. [34_000] as ["34.0Kcyc"]. *)

val cycles_to_string : int -> string
