(** Deterministic pseudo-random number generation.

    All simulations in this repository must be reproducible, so every
    component that needs randomness takes an explicit [Rng.t] seeded by the
    caller instead of using the global [Random] state. The generator is
    xorshift64*, which is fast and has good statistical quality for
    simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. A zero seed is remapped to a
    fixed non-zero constant since xorshift has an all-zero fixed point. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
