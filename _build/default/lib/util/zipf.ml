(* Gray et al. "Quickly generating billion-record synthetic databases"
   (SIGMOD '94) zipfian generator. zeta(n) is precomputed; sampling uses the
   closed-form two-branch inversion, so each draw costs one RNG call and a
   couple of [Float.pow]s. *)

type t = {
  n : int;
  skew : float;
  zetan : float;
  (* Precomputed constants of the inversion. *)
  alpha : float;
  eta : float;
}

let zeta n skew =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) skew)
  done;
  !acc

let create ~n ~skew =
  assert (n > 0);
  assert (skew > 0.0);
  (* The closed-form inversion has a pole at skew = 1; nudge off it (the
     distribution is continuous in the parameter). *)
  let skew = if abs_float (skew -. 1.0) < 1e-9 then 1.0 +. 1e-6 else skew in
  let zetan = zeta n skew in
  let zeta2 = zeta 2 skew in
  let alpha = 1.0 /. (1.0 -. skew) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. skew))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; skew; zetan; alpha; eta }

let n t = t.n
let skew t = t.skew

let sample t rng =
  let u = Rng.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.skew then 1
  else begin
    let r =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let k = int_of_float r in
    if k >= t.n then t.n - 1 else if k < 0 then 0 else k
  end

let probability t k =
  assert (k >= 0 && k < t.n);
  1.0 /. (Float.pow (float_of_int (k + 1)) t.skew *. t.zetan)
