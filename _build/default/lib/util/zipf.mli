(** Zipfian key sampling.

    The paper's hashmap and memcached workloads draw keys from a Zipfian
    distribution with skew parameters between 1.0 and 1.3 (Sections 4.3 and
    4.5). This module implements the classic Gray et al. incremental
    generator: O(n) setup to compute the normalization constant, O(1)
    amortized sampling via the two-region approximation. *)

type t

val create : n:int -> skew:float -> t
(** [create ~n ~skew] prepares a sampler over ranks [0 .. n-1] where rank 0
    is the hottest key. Requires [n > 0] and [skew > 0.]. *)

val n : t -> int
val skew : t -> float

val sample : t -> Rng.t -> int
(** Draw one rank. Rank [k] has probability proportional to
    [1 / (k+1)^skew]. *)

val probability : t -> int -> float
(** [probability t k] is the exact probability of rank [k]. *)
