let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geomean a =
  assert (Array.length a > 0);
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
  exp (log_sum /. float_of_int (Array.length a))

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  assert (Array.length a > 0);
  let b = sorted a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2)
  else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  assert (Array.length a > 0);
  assert (p >= 0.0 && p <= 100.0);
  let b = sorted a in
  let n = Array.length b in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  b.(idx)

let stddev a =
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

let pearson xs ys =
  assert (Array.length xs = Array.length ys && Array.length xs > 1);
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let a = x -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    xs;
  !num /. sqrt (!dx *. !dy)
