lib/fastswap/swap.ml: Clock Cost_model Hashtbl Memstore Net Queue
