lib/fastswap/swap.mli: Clock Cost_model
