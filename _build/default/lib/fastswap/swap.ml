let page_size = Memstore.page_size
let page_bits = 12

(* Per-page state bits. *)
let bit_present = 0x1
let bit_dirty = 0x2
let bit_hot = 0x4
let bit_swapped = 0x8 (* has a remote copy *)

type t = {
  cost : Cost_model.t;
  clock : Clock.t;
  net : Net.t;
  budget_pages : int;
  readahead : int;
  state : (int, int) Hashtbl.t; (* page index -> bits *)
  lru : int Queue.t;
  mutable present : int;
}

let create ?(readahead = 0) cost clock ~local_budget =
  {
    cost;
    clock;
    net = Net.create cost clock Net.Rdma;
    budget_pages = max 1 (local_budget / page_size);
    readahead;
    state = Hashtbl.create 4096;
    lru = Queue.create ();
    present = 0;
  }

let get_state t p = try Hashtbl.find t.state p with Not_found -> 0
let set_state t p s = Hashtbl.replace t.state p s

let is_present t ~addr = get_state t (addr lsr page_bits) land bit_present <> 0
let present_pages t = t.present

(* Second-chance reclaim, the kernel's approximated LRU. *)
let reclaim_one t =
  let attempts = ref (2 * Queue.length t.lru) in
  let rec go () =
    if Queue.is_empty t.lru || !attempts = 0 then false
    else begin
      decr attempts;
      let p = Queue.pop t.lru in
      let s = get_state t p in
      if s land bit_present = 0 then go ()
      else if s land bit_hot <> 0 then begin
        set_state t p (s land lnot bit_hot);
        Queue.push p t.lru;
        go ()
      end
      else begin
        if s land bit_dirty <> 0 then begin
          Net.writeback t.net ~bytes:page_size;
          Clock.count t.clock "fastswap.writebacks" 1
        end;
        set_state t p ((s lor bit_swapped) land lnot (bit_present lor bit_dirty));
        t.present <- t.present - 1;
        Clock.tick t.clock t.cost.Cost_model.evict_page;
        Clock.count t.clock "fastswap.evictions" 1;
        true
      end
    end
  in
  go ()

let reclaim_until_fits t =
  while t.present > t.budget_pages do
    if not (reclaim_one t) then
      (* Nothing reclaimable: a kernel would OOM; surface it. *)
      failwith "Fastswap: local memory exhausted with nothing reclaimable"
  done

let map_page t p ~hot =
  let s = get_state t p in
  set_state t p (s lor bit_present lor if hot then bit_hot else 0);
  t.present <- t.present + 1;
  Queue.push p t.lru;
  reclaim_until_fits t

let fault_page t p =
  let s = get_state t p in
  if s land bit_swapped <> 0 then begin
    (* Major fault: kernel software path plus the RDMA page read. *)
    Clock.tick t.clock t.cost.Cost_model.fastswap_fault_base;
    Net.fetch t.net ~bytes:page_size;
    Clock.count t.clock "fastswap.major_faults" 1;
    map_page t p ~hot:true;
    (* Optional cluster readahead of subsequent swapped-out pages. *)
    for k = 1 to t.readahead do
      let q = p + k in
      let sq = get_state t q in
      if sq land bit_swapped <> 0 && sq land bit_present = 0 then begin
        Net.fetch_prefetched t.net ~bytes:page_size;
        Clock.count t.clock "fastswap.readahead_pages" 1;
        map_page t q ~hot:false
      end
    done
  end
  else begin
    (* First touch: anonymous page allocation (minor fault). *)
    Clock.tick t.clock t.cost.Cost_model.fastswap_fault_local;
    Clock.count t.clock "fastswap.minor_faults" 1;
    map_page t p ~hot:true
  end

let touch t p ~write =
  let s = get_state t p in
  if s land bit_present = 0 then fault_page t p;
  let s = get_state t p in
  set_state t p (s lor bit_hot lor if write then bit_dirty else 0)

let access t ~addr ~size ~write =
  let first = addr lsr page_bits in
  let last = (addr + size - 1) lsr page_bits in
  touch t first ~write;
  if last <> first then touch t last ~write
