(** Classic iterative dataflow over the CFG.

    NOELLE exposes dataflow engines that passes build on; we provide the
    two standard instances TrackFM-adjacent tooling needs:

    - {b liveness} (backward, may): which registers are live into/out of
      each block — used to bound how much state a runtime call like the
      slow-path guard must consider spilled, and by the register-pressure
      report;
    - {b reaching definitions} (forward, may): which instruction ids may
      define each register observed at a block — the substrate for
      def-use style queries across blocks.

    Both run to a fixpoint over the reducible CFGs the builder emits (and
    terminate on any CFG: the lattices are finite powersets). *)

module Int_set : Set.S with type elt = int

type liveness = {
  live_in : (string, Int_set.t) Hashtbl.t;
  live_out : (string, Int_set.t) Hashtbl.t;
}

val liveness : Ir.func -> liveness

val live_in : liveness -> string -> Int_set.t
val live_out : liveness -> string -> Int_set.t

val max_pressure : Ir.func -> int
(** Maximum number of simultaneously-live registers at any block boundary
    — a proxy for the spill pressure the injected guards add. *)

type reaching = {
  reach_in : (string, Int_set.t) Hashtbl.t;
  reach_out : (string, Int_set.t) Hashtbl.t;
}

val reaching_definitions : Ir.func -> reaching

val reach_in : reaching -> string -> Int_set.t
