lib/analysis/profile.mli:
