lib/analysis/dataflow.mli: Hashtbl Ir Set
