lib/analysis/loops.mli: Ir
