lib/analysis/profile.ml: Hashtbl
