lib/analysis/defuse.mli: Ir
