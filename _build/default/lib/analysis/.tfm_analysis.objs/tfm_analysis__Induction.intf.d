lib/analysis/induction.mli: Ir Loops
