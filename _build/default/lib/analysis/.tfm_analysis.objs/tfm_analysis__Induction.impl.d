lib/analysis/induction.ml: Defuse Hashtbl Ir List Loops
