lib/analysis/dataflow.ml: Cfg Hashtbl Int Ir List Set
