lib/analysis/dominators.ml: Cfg Hashtbl List
