lib/analysis/alias.ml: Format Hashtbl Ir List
