lib/analysis/loops.ml: Cfg Dominators Hashtbl Ir List
