lib/analysis/alias.mli: Format Ir
