lib/analysis/defuse.ml: Hashtbl Ir List
