type t = {
  defs : (int, Ir.instr) Hashtbl.t;
  blocks : (int, string) Hashtbl.t;
  users : (int, int list) Hashtbl.t;
}

let build (f : Ir.func) =
  let defs = Hashtbl.create 64 in
  let blocks = Hashtbl.create 64 in
  let users = Hashtbl.create 64 in
  let note_use user = function
    | Ir.Reg id ->
        let cur = try Hashtbl.find users id with Not_found -> [] in
        Hashtbl.replace users id (user :: cur)
    | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> ()
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun (i : Ir.instr) ->
          Hashtbl.replace defs i.id i;
          Hashtbl.replace blocks i.id b.label;
          List.iter (note_use i.id) (Ir.instr_operands i.kind))
        b.instrs)
    f.blocks;
  { defs; blocks; users }

let def t id = Hashtbl.find_opt t.defs id
let block_of t id = Hashtbl.find_opt t.blocks id
let uses t id = try Hashtbl.find t.users id with Not_found -> []
