module Int_set = Set.Make (Int)

type liveness = {
  live_in : (string, Int_set.t) Hashtbl.t;
  live_out : (string, Int_set.t) Hashtbl.t;
}

let regs_of_values vs =
  List.fold_left
    (fun acc v ->
      match v with
      | Ir.Reg id -> Int_set.add id acc
      | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> acc)
    Int_set.empty vs

let term_uses = function
  | Ir.Cbr (c, _, _) -> regs_of_values [ c ]
  | Ir.Ret (Some v) -> regs_of_values [ v ]
  | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> Int_set.empty

(* Per-block gen (upward-exposed uses) and kill (definitions). Phi
   incoming values are treated as used at the end of the corresponding
   predecessor; for the backward may-analysis we conservatively treat
   them as used in this block, which over-approximates liveness but
   keeps the framework simple and safe for pressure estimation. *)
let block_gen_kill (b : Ir.block) =
  let gen = ref Int_set.empty in
  let kill = ref Int_set.empty in
  List.iter
    (fun (i : Ir.instr) ->
      let uses = regs_of_values (Ir.instr_operands i.Ir.kind) in
      gen := Int_set.union !gen (Int_set.diff uses !kill);
      if Ir.defines_value i.Ir.kind then kill := Int_set.add i.Ir.id !kill)
    b.instrs;
  let tuses = term_uses b.term in
  gen := Int_set.union !gen (Int_set.diff tuses !kill);
  (!gen, !kill)

let liveness (f : Ir.func) =
  let cfg = Cfg.build f in
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  let gen_kill = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace gen_kill b.label (block_gen_kill b);
      Hashtbl.replace live_in b.label Int_set.empty;
      Hashtbl.replace live_out b.label Int_set.empty)
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse order converges faster for the backward problem *)
    List.iter
      (fun (b : Ir.block) ->
        let out =
          List.fold_left
            (fun acc s ->
              Int_set.union acc
                (try Hashtbl.find live_in s with Not_found -> Int_set.empty))
            Int_set.empty (Cfg.successors cfg b.label)
        in
        let gen, kill = Hashtbl.find gen_kill b.label in
        let inn = Int_set.union gen (Int_set.diff out kill) in
        if
          not
            (Int_set.equal out (Hashtbl.find live_out b.label)
            && Int_set.equal inn (Hashtbl.find live_in b.label))
        then begin
          Hashtbl.replace live_out b.label out;
          Hashtbl.replace live_in b.label inn;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  { live_in; live_out }

let live_in t l = try Hashtbl.find t.live_in l with Not_found -> Int_set.empty
let live_out t l = try Hashtbl.find t.live_out l with Not_found -> Int_set.empty

let max_pressure (f : Ir.func) =
  let lv = liveness f in
  List.fold_left
    (fun acc (b : Ir.block) ->
      max acc
        (max
           (Int_set.cardinal (live_in lv b.label))
           (Int_set.cardinal (live_out lv b.label))))
    0 f.blocks

type reaching = {
  reach_in : (string, Int_set.t) Hashtbl.t;
  reach_out : (string, Int_set.t) Hashtbl.t;
}

let reaching_definitions (f : Ir.func) =
  let cfg = Cfg.build f in
  let reach_in = Hashtbl.create 16 in
  let reach_out = Hashtbl.create 16 in
  let defs_of (b : Ir.block) =
    List.fold_left
      (fun acc (i : Ir.instr) ->
        if Ir.defines_value i.Ir.kind then Int_set.add i.Ir.id acc else acc)
      Int_set.empty b.instrs
  in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace reach_in b.label Int_set.empty;
      Hashtbl.replace reach_out b.label (defs_of b))
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        let inn =
          List.fold_left
            (fun acc p ->
              Int_set.union acc
                (try Hashtbl.find reach_out p with Not_found -> Int_set.empty))
            Int_set.empty (Cfg.predecessors cfg b.label)
        in
        (* SSA registers are never redefined, so out = in U defs. *)
        let out = Int_set.union inn (defs_of b) in
        if
          not
            (Int_set.equal inn (Hashtbl.find reach_in b.label)
            && Int_set.equal out (Hashtbl.find reach_out b.label))
        then begin
          Hashtbl.replace reach_in b.label inn;
          Hashtbl.replace reach_out b.label out;
          changed := true
        end)
      f.blocks
  done;
  { reach_in; reach_out }

let reach_in t l = try Hashtbl.find t.reach_in l with Not_found -> Int_set.empty
