(** Definition and placement maps over a function snapshot. *)

type t

val build : Ir.func -> t

val def : t -> int -> Ir.instr option
(** The instruction whose id is the given register, if any. *)

val block_of : t -> int -> string option
(** Label of the block containing the instruction with this id. *)

val uses : t -> int -> int list
(** Ids of instructions that use register [id] as an operand. *)
