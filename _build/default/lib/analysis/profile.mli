(** Execution profiles: block-frequency counts.

    NOELLE's profiling engine feeds TrackFM's improved loop chunking
    (Section 3.4): loops whose measured iteration behaviour cannot
    amortize the chunking setup are filtered out. Our profile is filled
    by an instrumented interpreter run and consumed by the chunking
    pass's gate. *)

type t

val create : unit -> t

val add_block : t -> func:string -> block:string -> int -> unit
(** Accumulate executions of one block. *)

val block_count : t -> func:string -> block:string -> int

val avg_trip_count :
  t -> func:string -> header:string -> preheader:string -> float option
(** Mean iterations per loop entry, derived as
    [header executions / preheader executions] (our canonical loops test
    the condition in the header, so the header runs trip+1 times per
    entry; the estimate subtracts that final check). [None] when the loop
    was never entered. *)
