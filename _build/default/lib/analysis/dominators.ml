type t = {
  idoms : (string, string) Hashtbl.t;
  entry : string;
  reachable : (string, unit) Hashtbl.t;
}

let compute cfg =
  let rpo = Cfg.reachable cfg in
  let entry = match rpo with e :: _ -> e | [] -> invalid_arg "empty cfg" in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let reachable = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace reachable l ()) rpo;
  let idoms = Hashtbl.create 16 in
  Hashtbl.replace idoms entry entry;
  let intersect a b =
    (* Walk up the (partial) dominator tree towards the entry. *)
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idoms a) b else go a (Hashtbl.find idoms b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let preds =
            List.filter
              (fun p -> Hashtbl.mem reachable p && Hashtbl.mem idoms p)
              (Cfg.predecessors cfg l)
          in
          match preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idoms l <> Some new_idom then begin
                Hashtbl.replace idoms l new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idoms; entry; reachable }

let idom t l =
  if l = t.entry then None
  else if not (Hashtbl.mem t.reachable l) then None
  else Hashtbl.find_opt t.idoms l

let dominates t a b =
  if not (Hashtbl.mem t.reachable b) then false
  else
    let rec go x = if x = a then true else if x = t.entry then a = t.entry else
      match Hashtbl.find_opt t.idoms x with
      | Some p when p <> x -> go p
      | _ -> false
    in
    go b
