(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

    Needed to identify natural loops (a back edge is an edge whose target
    dominates its source). *)

type t

val compute : Cfg.t -> t

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block (and for blocks
    unreachable from the entry). *)

val dominates : t -> string -> string -> bool
(** [dominates t a b] — does [a] dominate [b]? Reflexive. *)
