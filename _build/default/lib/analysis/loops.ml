type loop = {
  header : string;
  latches : string list;
  body : string list;
  preheader : string option;
  exits : string list;
  depth : int;
  parent : string option;
}

type t = {
  all : loop list;
  by_block : (string, loop) Hashtbl.t; (* innermost loop per block *)
}

let contains loop l = List.mem l loop.body

let natural_loop_body cfg header latches =
  (* Backward reachability from the latches, stopping at the header. *)
  let in_body = Hashtbl.create 16 in
  Hashtbl.replace in_body header ();
  let rec go l =
    if not (Hashtbl.mem in_body l) then begin
      Hashtbl.replace in_body l ();
      List.iter go (Cfg.predecessors cfg l)
    end
  in
  List.iter go latches;
  in_body

let analyze (f : Ir.func) =
  let cfg = Cfg.build f in
  let dom = Dominators.compute cfg in
  let order = Cfg.labels cfg in
  (* Group back edges by header. *)
  let back_edges = Hashtbl.create 8 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if Dominators.dominates dom dst src then begin
            let cur = try Hashtbl.find back_edges dst with Not_found -> [] in
            Hashtbl.replace back_edges dst (cur @ [ src ])
          end)
        (Cfg.successors cfg src))
    order;
  let raw_loops =
    List.filter_map
      (fun header ->
        match Hashtbl.find_opt back_edges header with
        | None -> None
        | Some latches ->
            let in_body = natural_loop_body cfg header latches in
            let body = List.filter (Hashtbl.mem in_body) order in
            let outside_preds =
              List.filter
                (fun p -> not (Hashtbl.mem in_body p))
                (Cfg.predecessors cfg header)
            in
            let preheader =
              match outside_preds with [ p ] -> Some p | _ -> None
            in
            let exits =
              body
              |> List.concat_map (Cfg.successors cfg)
              |> List.filter (fun s -> not (Hashtbl.mem in_body s))
              |> List.sort_uniq compare
            in
            Some
              { header; latches; body; preheader; exits; depth = 1;
                parent = None })
      order
  in
  (* Nesting: loop A encloses B if A's body contains B's header and A <> B.
     Depth = number of enclosing loops + 1; parent = smallest enclosing. *)
  let enclosing b =
    List.filter
      (fun a -> a.header <> b.header && contains a b.header)
      raw_loops
  in
  let all =
    List.map
      (fun l ->
        let encl = enclosing l in
        let parent =
          (* The immediate parent is the enclosing loop with the largest
             depth, i.e. the smallest body. *)
          match
            List.sort
              (fun a b -> compare (List.length a.body) (List.length b.body))
              encl
          with
          | p :: _ -> Some p.header
          | [] -> None
        in
        { l with depth = 1 + List.length encl; parent })
      raw_loops
  in
  let all = List.sort (fun a b -> compare a.depth b.depth) all in
  let by_block = Hashtbl.create 16 in
  (* Process outermost-to-innermost so the innermost wins. *)
  List.iter
    (fun l -> List.iter (fun blk -> Hashtbl.replace by_block blk l) l.body)
    all;
  { all; by_block }

let loops t = t.all
let loop_of_block t blk = Hashtbl.find_opt t.by_block blk

let innermost t =
  List.filter
    (fun l ->
      not
        (List.exists (fun other -> other.parent = Some l.header) t.all))
    t.all
