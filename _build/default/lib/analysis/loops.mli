(** Natural-loop detection.

    A back edge is a CFG edge [latch -> header] where the header dominates
    the latch; the loop body is everything that can reach the latch without
    passing through the header. Loops sharing a header are merged, and a
    nesting forest is derived by body inclusion — the same structural
    notion NOELLE exposes to TrackFM's loop chunking pass. *)

type loop = {
  header : string;
  latches : string list;
  body : string list;        (** includes header; function order *)
  preheader : string option; (** unique out-of-loop predecessor of header *)
  exits : string list;       (** blocks outside the loop targeted from inside *)
  depth : int;               (** 1 = outermost *)
  parent : string option;    (** header label of the enclosing loop *)
}

type t

val analyze : Ir.func -> t

val loops : t -> loop list
(** All loops, outermost first. *)

val loop_of_block : t -> string -> loop option
(** The innermost loop containing the block, if any. *)

val innermost : t -> loop list
(** Loops that contain no other loop. *)

val contains : loop -> string -> bool
