type iv = {
  phi_id : int;
  init : Ir.value;
  step : int;
  header : string;
  bound : Ir.value option;
}

type strided_access = {
  instr_id : int;
  block : string;
  is_store : bool;
  access_size : int;
  base : Ir.value;
  gep_offset : int;
  iv : iv;
  byte_stride : int;
}

type t = {
  f : Ir.func;
  du : Defuse.t;
  loop_info : Loops.t;
  ivs : (string, iv list) Hashtbl.t; (* header -> ivs *)
}

let is_loop_invariant t (loop : Loops.loop) = function
  | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> true
  | Ir.Reg id -> begin
      match Defuse.block_of t.du id with
      | Some blk -> not (Loops.contains loop blk)
      | None -> false
    end

(* Evaluate a value as a compile-time constant by chasing simple defs. *)
let rec const_of du v =
  match v with
  | Ir.Const n -> Some n
  | Ir.Reg id -> begin
      match Defuse.def du id with
      | Some { kind = Ir.Binop (op, a, b); _ } -> begin
          match (const_of du a, const_of du b, op) with
          | Some x, Some y, Ir.Add -> Some (x + y)
          | Some x, Some y, Ir.Sub -> Some (x - y)
          | Some x, Some y, Ir.Mul -> Some (x * y)
          | Some x, Some y, Ir.Shl -> Some (x lsl y)
          | _ -> None
        end
      | _ -> None
    end
  | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> None

(* Does [v] compute [phi + constant] (possibly through an add/sub chain)?
   Returns the net constant increment. *)
let rec increment_of du phi_id v =
  match v with
  | Ir.Reg id when id = phi_id -> Some 0
  | Ir.Reg id -> begin
      match Defuse.def du id with
      | Some { kind = Ir.Binop (Ir.Add, a, b); _ } -> begin
          match (increment_of du phi_id a, const_of du b) with
          | Some k, Some c -> Some (k + c)
          | _ -> (
              match (const_of du a, increment_of du phi_id b) with
              | Some c, Some k -> Some (k + c)
              | _ -> None)
        end
      | Some { kind = Ir.Binop (Ir.Sub, a, b); _ } -> begin
          match (increment_of du phi_id a, const_of du b) with
          | Some k, Some c -> Some (k - c)
          | _ -> None
        end
      | _ -> None
    end
  | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> None

(* The loop-governing bound: header terminator [cbr (icmp lt iv bound)]. *)
let governing_bound (f : Ir.func) du loop phi_id invariant =
  let header = Ir.find_block f (loop : Loops.loop).header in
  match header.term with
  | Ir.Cbr (Ir.Reg cond_id, _, _) -> begin
      match Defuse.def du cond_id with
      | Some { kind = Ir.Icmp ((Ir.Lt | Ir.Le), Ir.Reg l, bound); _ }
        when l = phi_id && invariant bound ->
          Some bound
      | _ -> None
    end
  | Ir.Br _ | Ir.Cbr _ | Ir.Ret _ | Ir.Unreachable -> None

let find_ivs f du loop_info (loop : Loops.loop) =
  let header = Ir.find_block f loop.header in
  let invariant v =
    is_loop_invariant { f; du; loop_info; ivs = Hashtbl.create 0 } loop v
  in
  List.filter_map
    (fun (i : Ir.instr) ->
      match i.kind with
      | Ir.Phi incoming ->
          let from_outside, from_latch =
            List.partition
              (fun (l, _) -> not (List.mem l loop.latches))
              incoming
          in
          begin
            match (from_outside, from_latch) with
            | [ (_, init) ], latch_arms when invariant init -> begin
                (* Every latch arm must increment by the same constant. *)
                let steps =
                  List.map (fun (_, v) -> increment_of du i.id v) latch_arms
                in
                match steps with
                | Some s :: rest
                  when s <> 0 && List.for_all (( = ) (Some s)) rest ->
                    Some
                      {
                        phi_id = i.id;
                        init;
                        step = s;
                        header = loop.header;
                        bound = governing_bound f du loop i.id invariant;
                      }
                | _ -> None
              end
            | _ -> None
          end
      | _ -> None)
    header.instrs

(* Stride coefficient of [v] with respect to the IV phi: [v] must be
   [a*iv + invariant]; returns [a]. Loop-invariant subterms contribute
   coefficient 0 even when their value is not a compile-time constant —
   this is what lets accesses like [p\[d*n + i\]] chunk on [i] while [d*n]
   varies per entry of the enclosing loop. Multiplications scaling the IV
   still need a numeric factor, since the stride must be static. *)
let stride_coeff t loop phi_id v =
  let rec go v =
    if is_loop_invariant t loop v then Some 0
    else
      match v with
      | Ir.Reg id when id = phi_id -> Some 1
      | Ir.Reg id -> begin
          match Defuse.def t.du id with
          | Some { kind = Ir.Binop (op, x, y); _ } -> begin
              match op with
              | Ir.Add -> begin
                  match (go x, go y) with
                  | Some a1, Some a2 -> Some (a1 + a2)
                  | _ -> None
                end
              | Ir.Sub -> begin
                  match (go x, go y) with
                  | Some a1, Some a2 -> Some (a1 - a2)
                  | _ -> None
                end
              | Ir.Mul -> begin
                  match (go x, const_of t.du y) with
                  | Some a1, Some c -> Some (a1 * c)
                  | _ -> (
                      match (const_of t.du x, go y) with
                      | Some c, Some a2 -> Some (a2 * c)
                      | _ -> None)
                end
              | Ir.Shl -> begin
                  match (go x, const_of t.du y) with
                  | Some a1, Some c -> Some (a1 lsl c)
                  | _ -> None
                end
              | Ir.Sdiv | Ir.Srem | Ir.And | Ir.Or | Ir.Xor | Ir.Lshr
              | Ir.Ashr ->
                  None
            end
          | _ -> None
        end
      | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> None
  in
  go v

let analyze (f : Ir.func) =
  let du = Defuse.build f in
  let loop_info = Loops.analyze f in
  let ivs = Hashtbl.create 8 in
  List.iter
    (fun loop ->
      Hashtbl.replace ivs (loop : Loops.loop).header
        (find_ivs f du loop_info loop))
    (Loops.loops loop_info);
  { f; du; loop_info; ivs }

let ivs_of_loop t (loop : Loops.loop) =
  try Hashtbl.find t.ivs loop.header with Not_found -> []

let strided_accesses t (loop : Loops.loop) =
  let ivs = ivs_of_loop t loop in
  let in_this_loop blk =
    match Loops.loop_of_block t.loop_info blk with
    | Some l -> l.header = loop.header
    | None -> false
  in
  let classify_ptr ptr =
    (* Pointer must be a gep whose index is affine in some IV of this loop
       and whose base is loop-invariant. *)
    match ptr with
    | Ir.Reg id -> begin
        match Defuse.def t.du id with
        | Some { kind = Ir.Gep { base; index; scale; offset }; _ }
          when is_loop_invariant t loop base ->
            List.find_map
              (fun iv ->
                match stride_coeff t loop iv.phi_id index with
                | Some a when a <> 0 ->
                    Some (base, offset, iv, a * iv.step * scale)
                | _ -> None)
              ivs
        | _ -> None
      end
    | Ir.Const _ | Ir.Constf _ | Ir.Arg _ | Ir.Sym _ -> None
  in
  List.concat_map
    (fun blk_label ->
      if not (in_this_loop blk_label) then []
      else
        let blk = Ir.find_block t.f blk_label in
        List.filter_map
          (fun (i : Ir.instr) ->
            let make ptr is_store access_size =
              match classify_ptr ptr with
              | Some (base, gep_offset, iv, byte_stride) ->
                  Some
                    {
                      instr_id = i.id;
                      block = blk_label;
                      is_store;
                      access_size;
                      base;
                      gep_offset;
                      iv;
                      byte_stride;
                    }
              | None -> None
            in
            match i.kind with
            | Ir.Load { ptr; size; _ } -> make ptr false size
            | Ir.Store { ptr; size; _ } -> make ptr true size
            | _ -> None)
          blk.instrs)
    loop.body
