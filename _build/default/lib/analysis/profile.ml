type t = { counts : (string * string, int) Hashtbl.t }

let create () = { counts = Hashtbl.create 64 }

let add_block t ~func ~block n =
  let key = (func, block) in
  let cur = try Hashtbl.find t.counts key with Not_found -> 0 in
  Hashtbl.replace t.counts key (cur + n)

let block_count t ~func ~block =
  try Hashtbl.find t.counts (func, block) with Not_found -> 0

let avg_trip_count t ~func ~header ~preheader =
  let entries = block_count t ~func ~block:preheader in
  let headers = block_count t ~func ~block:header in
  if entries = 0 then None
  else
    let trips = float_of_int (headers - entries) /. float_of_int entries in
    Some (max 0.0 trips)
