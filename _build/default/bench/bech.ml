(* Host-side microbenchmarks (Bechamel): how fast the simulator itself
   executes its primitives. These do not reproduce paper numbers — they
   document the cost of running the reproduction. *)

open Bechamel
open Toolkit

let make_guard_bench () =
  let clock = Clock.create () in
  let store = Memstore.create () in
  let rt =
    Trackfm.Runtime.create Cost_model.default clock store ~object_size:4096
      ~local_budget:(Tfm_util.Units.mib 64)
  in
  let p = Trackfm.Runtime.tfm_malloc rt (Tfm_util.Units.mib 1) in
  Trackfm.Runtime.guard rt ~ptr:p ~size:8 ~write:false;
  Test.make ~name:"runtime fast-path guard"
    (Staged.stage (fun () -> Trackfm.Runtime.guard rt ~ptr:p ~size:8 ~write:false))

let make_memstore_bench () =
  let store = Memstore.create () in
  let i = ref 0 in
  Test.make ~name:"memstore 8B store+load"
    (Staged.stage (fun () ->
         i := (!i + 8) land 0xFFFFF;
         Memstore.store store ~addr:!i ~size:8 42;
         ignore (Memstore.load store ~addr:!i ~size:8)))

let make_interp_bench () =
  let m = Stream.build ~n:1000 ~kernel:Stream.Sum () in
  Test.make ~name:"interp 1000-element STREAM sum"
    (Staged.stage (fun () ->
         let clock = Clock.create () in
         let backend =
           Backend.local Cost_model.default clock (Memstore.create ())
         in
         ignore (Interp.run backend m ~entry:"main")))

let make_pipeline_bench () =
  Test.make ~name:"TrackFM pipeline on STREAM sum"
    (Staged.stage (fun () ->
         let m = Stream.build ~n:1000 ~kernel:Stream.Sum () in
         ignore (Trackfm.Pipeline.run Trackfm.Pipeline.default_config m)))

let run () =
  let tests =
    Test.make_grouped ~name:"simulator"
      [
        make_guard_bench ();
        make_memstore_bench ();
        make_interp_bench ();
        make_pipeline_bench ();
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "== Simulator host-performance (Bechamel, ns/run) ==\n";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-45s %12.1f\n" name est
      | _ -> Printf.printf "%-45s (no estimate)\n" name)
    results;
  print_newline ()
