bench/main.mli:
