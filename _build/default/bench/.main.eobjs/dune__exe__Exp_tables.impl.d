bench/exp_tables.ml: Analytics Array Bench_common Builder Clock Cost_model Driver Fastswap Hashmap Ir Kmeans List Memcached Memstore Nas Printf Stream Tfm_util Trackfm Verifier
