bench/exp_nas.ml: Aifm Array Backend Bench_common Bytes Char Clock Cost_model Driver Hashtbl Interp List Memcached Memstore Nas Printf Shenango Stream String Tfm_opt Tfm_util Trackfm
