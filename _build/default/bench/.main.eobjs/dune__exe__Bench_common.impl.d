bench/bench_common.ml: Driver Printf
