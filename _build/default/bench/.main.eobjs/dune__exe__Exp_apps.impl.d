bench/exp_apps.ml: Analytics Array Bench_common Clock Driver Hashmap List Memcached Printf Tfm_util
