bench/exp_params.ml: Bench_common Driver Hashmap List Printf Stream Tfm_util
