bench/exp_micro.ml: Bench_common Builder Cost_model Driver Ir Kmeans List Printf Stream Tfm_util Trackfm Verifier
