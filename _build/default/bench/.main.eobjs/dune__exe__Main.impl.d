bench/main.ml: Array Bech Bench_common Exp_apps Exp_micro Exp_nas Exp_params Exp_tables List Printf String Sys Unix
