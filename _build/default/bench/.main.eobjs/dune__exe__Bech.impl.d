bench/bech.ml: Analyze Backend Bechamel Benchmark Clock Cost_model Hashtbl Instance Interp Measure Memstore Printf Staged Stream Test Tfm_util Time Toolkit Trackfm
