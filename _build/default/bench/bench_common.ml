(* Shared plumbing for the experiment harness: system runners, sweep
   helpers, and uniform reporting. *)

let quick = ref false

(* Scale factor applied to workload sizes: full size by default, quartered
   with --quick. *)
let scaled n = if !quick then max 1 (n / 4) else n

let pct_sweep = [ 10; 20; 30; 40; 50; 60; 75; 90; 100 ]
let short_sweep = [ 10; 25; 50; 75; 100 ]

(* Budgets are page-rounded with two pages of slack so that a nominal
   100% budget really holds the working set (allocation granularity would
   otherwise leave it one page short and turn every scan into LRU
   thrash). *)
let budget_of ws pct =
  max (16 * 4096) ((((ws * pct / 100) + 4095) / 4096 * 4096) + (2 * 4096))

let cycles_to_seconds c = float_of_int c /. 2.4e9

let speedup base x = float_of_int base /. float_of_int x

let print_expectation ~paper ~ours =
  Printf.printf "paper: %s\nours:  %s\n\n" paper ours

(* Run a workload under TrackFM with given options; returns outcome. *)
let tfm ?blobs ?(object_size = 4096) ?(chunk_mode = `Gated) ?(prefetch = true)
    ?(use_state_table = true) ?(profile_gate = true) ?(size_classes = [])
    ~budget build =
  let opts =
    {
      Driver.object_size;
      local_budget = budget;
      chunk_mode;
      prefetch;
      use_state_table;
      profile_gate;
      size_classes;
    }
  in
  fst (Driver.run_trackfm ?blobs build opts)

let tfm_with_report ?blobs ?(object_size = 4096) ?(chunk_mode = `Gated)
    ?(profile_gate = true) ~budget build =
  let opts =
    {
      Driver.object_size;
      local_budget = budget;
      chunk_mode;
      prefetch = true;
      use_state_table = true;
      profile_gate;
      size_classes = [];
    }
  in
  Driver.run_trackfm ?blobs build opts

let fastswap ?blobs ~budget build =
  Driver.run_fastswap ?blobs ~local_budget:budget build

let local ?blobs build = Driver.run_local ?blobs build

let gb bytes = float_of_int bytes /. 1e9
let mops ops cycles = float_of_int ops /. (cycles_to_seconds cycles *. 1e6)
let kops ops cycles = float_of_int ops /. (cycles_to_seconds cycles *. 1e3)
