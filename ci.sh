#!/bin/sh
# Staged CI pipeline. Mirrors what the driver runs on every PR; keep it
# green.
#
#   ./ci.sh                 # all stages: build fmt lint test smoke faults durability tracing engines hybrid serving
#   ./ci.sh build test      # just those stages
#   ./ci.sh --list          # list stages with one-line descriptions
#   ./ci.sh --update-golden # refresh ci/golden/ from the current build
#
# Each stage is wall-clock timed; a failing stage is named in a
# trailing "== stage X: FAILED ==" line so the culprit is the last
# thing in the log.
#
# Stages:
#   build      - dune build @all
#   fmt        - dune build @fmt (skipped when ocamlformat is not installed)
#   lint       - static-analysis gate: guard-coverage verifier + elision
#                witness re-check over every workload x chunk mode x
#                optimizer on/off (trackfm_cli check); summary, classify
#                (text + schema-validated JSON) and shape dumps must be
#                byte-identical across two runs
#   test       - dune runtest (tier-1 unit/property/integration suites)
#   smoke      - quick bench-harness run; writes metrics JSON to _ci/metrics
#   faults     - fault-injection determinism matrix: fixed workloads x seeds,
#                each run twice (byte-identical counters required) and diffed
#                against the checked-in goldens in ci/golden/
#   durability - replicated-tier crash matrix: workloads x seeds x
#                replicas={1,3}; each run twice (byte-identical counters),
#                replicas=3 must finish with a correct checksum, replicas=1
#                must demonstrably lose data (wrong checksum, lost objects)
#   tracing    - observability gate: span-traced runs must not perturb the
#                sim (counters byte-identical to ci/golden/), the exported
#                Chrome trace must validate against ci/trace_schema.json,
#                and fixed-seed attribution exports must be byte-identical
#                across two runs (workloads x seeds matrix)
#   engines    - execution-engine differential gate: workloads x chunk
#                modes x fault seeds run under both the interpreter and
#                the compiled engine with byte-identical counters JSON
#                (compiled additionally diffed against ci/golden/), the
#                check matrix re-run with --engine compiled, and the
#                engine_speedup dispatch-throughput experiment must PASS
#   hybrid     - hybrid data-plane gate: fixed-seed routed runs (pointer
#                chase / llist x route mode x local budget) each run twice
#                under both engines (byte-identical counters required) and
#                diffed against ci/golden/hybrid-*.json; a routed
#                streaming workload must stay byte-identical to its
#                unrouted run (the classifier keeps its hands off); the
#                shadow validator cross-checks static classes against
#                observed dependent-load depths; the shape_routing bench
#                gate must PASS
#   serving    - overload-robustness gate: a short fixed-seed offered-load
#                sweep of the serving tier (backends x rates, faults
#                medium, controls on), each run twice (byte-identical
#                serving JSON required) and diffed against ci/golden/
set -eu

cd "$(dirname "$0")"

CLI=_build/default/bin/trackfm_cli.exe
FAULT_WORKLOADS="stream-sum hashmap"
FAULT_SEEDS="1 2 3"
FAULT_SPEC=medium
SUMMARY_WORKLOADS="stream-sum kmeans analytics hashmap"
CLASSIFY_WORKLOADS="stream-sum kmeans analytics hashmap memcached pointer-chase llist"
SHAPE_WORKLOADS="llist pointer-chase analytics hashmap"
HYBRID_ROUTES="static profiled"
HYBRID_PCTS="25 100"
DUR_WORKLOADS="stream-sum analytics"
DUR_SEEDS="1 2"
DUR_SPEC=crash=1500000:250000

stage_build() {
    echo "== stage build: dune build @all =="
    dune build @all
}

stage_fmt() {
    # Formatting is advisory: the check only runs where ocamlformat is
    # installed (the pinned build image does not ship it).
    if command -v ocamlformat >/dev/null 2>&1; then
        echo "== stage fmt: dune build @fmt =="
        dune build @fmt
    else
        echo "== stage fmt: skipped (ocamlformat not installed) =="
    fi
}

stage_lint() {
    echo "== stage lint: guard-coverage verifier + elision witness re-check =="
    dune build bin/trackfm_cli.exe
    # The check matrix runs every workload x chunk mode x optimizer
    # setting both with and without interprocedural summaries.
    "$CLI" check
    # Summary determinism: the call-graph/summary dump must be
    # byte-identical across two runs of the same build.
    echo "== stage lint: summary dump determinism =="
    mkdir -p _ci/summaries
    for w in $SUMMARY_WORKLOADS; do
        "$CLI" summaries -w "$w" >"_ci/summaries/$w.txt"
        "$CLI" summaries -w "$w" >"_ci/summaries/$w.txt.rerun"
        if ! cmp -s "_ci/summaries/$w.txt" "_ci/summaries/$w.txt.rerun"; then
            echo "lint: NONDETERMINISTIC summaries dump for $w" >&2
            diff "_ci/summaries/$w.txt" "_ci/summaries/$w.txt.rerun" >&2 || true
            exit 1
        fi
    done
    # Classification determinism: the access-pattern dump (and the
    # routing decisions it drives) must be byte-identical across two
    # runs of the same build.
    echo "== stage lint: access-pattern classification determinism =="
    mkdir -p _ci/classify
    for w in $CLASSIFY_WORKLOADS; do
        "$CLI" classify -w "$w" >"_ci/classify/$w.txt"
        "$CLI" classify -w "$w" >"_ci/classify/$w.txt.rerun"
        if ! cmp -s "_ci/classify/$w.txt" "_ci/classify/$w.txt.rerun"; then
            echo "lint: NONDETERMINISTIC classification dump for $w" >&2
            diff "_ci/classify/$w.txt" "_ci/classify/$w.txt.rerun" >&2 || true
            exit 1
        fi
        # The machine-readable variant must be deterministic too, and
        # must satisfy the checked-in schema.
        "$CLI" classify -w "$w" --json >"_ci/classify/$w.json"
        "$CLI" classify -w "$w" --json >"_ci/classify/$w.json.rerun"
        if ! cmp -s "_ci/classify/$w.json" "_ci/classify/$w.json.rerun"; then
            echo "lint: NONDETERMINISTIC classification JSON for $w" >&2
            diff "_ci/classify/$w.json" "_ci/classify/$w.json.rerun" >&2 || true
            exit 1
        fi
        if ! "$CLI" validate --schema ci/classify_schema.json "_ci/classify/$w.json" >/dev/null; then
            echo "lint: classify --json for $w violates ci/classify_schema.json" >&2
            exit 1
        fi
    done
    # Shape-analysis determinism: the interprocedural shape dump must be
    # byte-identical across two runs of the same build.
    echo "== stage lint: shape analysis determinism =="
    mkdir -p _ci/shape
    for w in $SHAPE_WORKLOADS; do
        "$CLI" shape -w "$w" >"_ci/shape/$w.txt"
        "$CLI" shape -w "$w" >"_ci/shape/$w.txt.rerun"
        if ! cmp -s "_ci/shape/$w.txt" "_ci/shape/$w.txt.rerun"; then
            echo "lint: NONDETERMINISTIC shape dump for $w" >&2
            diff "_ci/shape/$w.txt" "_ci/shape/$w.txt.rerun" >&2 || true
            exit 1
        fi
    done
}

stage_test() {
    echo "== stage test: dune runtest =="
    dune runtest
}

stage_smoke() {
    echo "== stage smoke: bench harness (quick) =="
    mkdir -p _ci/metrics
    dune exec bench/main.exe -- table1 fig6 --quick --metrics-dir _ci/metrics
    for f in table1 fig6; do
        if [ ! -s "_ci/metrics/$f.json" ]; then
            echo "smoke: missing metrics JSON _ci/metrics/$f.json" >&2
            exit 1
        fi
    done
}

stage_faults() {
    echo "== stage faults: determinism matrix ($FAULT_SPEC; seeds $FAULT_SEEDS) =="
    dune build bin/trackfm_cli.exe
    mkdir -p _ci/faults
    fail=0
    for w in $FAULT_WORKLOADS; do
        for seed in $FAULT_SEEDS; do
            out="_ci/faults/$w-seed$seed.json"
            "$CLI" run -w "$w" -s trackfm -m 25 \
                --faults "$FAULT_SPEC" --fault-seed "$seed" \
                --counters-json "$out" >/dev/null
            "$CLI" run -w "$w" -s trackfm -m 25 \
                --faults "$FAULT_SPEC" --fault-seed "$seed" \
                --counters-json "$out.rerun" >/dev/null
            if ! cmp -s "$out" "$out.rerun"; then
                echo "faults: NONDETERMINISTIC: $w seed $seed differs between two runs" >&2
                diff "$out" "$out.rerun" >&2 || true
                fail=1
            fi
            golden="ci/golden/$w-seed$seed.json"
            if [ ! -f "$golden" ]; then
                echo "faults: missing golden $golden (regenerate with: cp $out $golden)" >&2
                fail=1
            elif ! cmp -s "$golden" "$out"; then
                echo "faults: DRIFT: $w seed $seed differs from $golden" >&2
                diff "$golden" "$out" >&2 || true
                fail=1
            fi
        done
    done
    if [ "$fail" -ne 0 ]; then
        echo "faults stage failed" >&2
        exit 1
    fi
}

stage_durability() {
    echo "== stage durability: crash matrix ($DUR_SPEC; seeds $DUR_SEEDS) =="
    dune build bin/trackfm_cli.exe
    mkdir -p _ci/durability
    fail=0
    for w in $DUR_WORKLOADS; do
        for seed in $DUR_SEEDS; do
            for tier in "1 1" "3 2"; do
                set -- $tier
                r=$1; k=$2
                out="_ci/durability/$w-seed$seed-r$r.json"
                log="_ci/durability/$w-seed$seed-r$r.log"
                "$CLI" run -w "$w" -s trackfm -m 25 \
                    --faults "$DUR_SPEC" --fault-seed "$seed" \
                    --replicas "$r" --ack "$k" \
                    --counters-json "$out" >"$log"
                "$CLI" run -w "$w" -s trackfm -m 25 \
                    --faults "$DUR_SPEC" --fault-seed "$seed" \
                    --replicas "$r" --ack "$k" \
                    --counters-json "$out.rerun" >/dev/null
                if ! cmp -s "$out" "$out.rerun"; then
                    echo "durability: NONDETERMINISTIC: $w seed $seed r=$r differs between two runs" >&2
                    diff "$out" "$out.rerun" >&2 || true
                    fail=1
                fi
                if [ "$r" = 1 ]; then
                    # A single node under this crash schedule must lose
                    # data: wrong answer, nonzero net.lost_objects.
                    if ! grep -q 'WRONG' "$log"; then
                        echo "durability: $w seed $seed r=1 did NOT lose data (checksum correct?)" >&2
                        fail=1
                    fi
                    if ! grep -q '"net.lost_objects":[1-9]' "$out"; then
                        echo "durability: $w seed $seed r=1 reports no lost objects" >&2
                        fail=1
                    fi
                else
                    # Three replicas with ack=2 must ride the identical
                    # schedule to a correct checksum with nothing lost.
                    if ! grep -q '(correct)' "$log"; then
                        echo "durability: $w seed $seed r=$r checksum WRONG" >&2
                        fail=1
                    fi
                    if grep -q '"net.lost_objects"' "$out"; then
                        echo "durability: $w seed $seed r=$r lost objects despite replication" >&2
                        fail=1
                    fi
                fi
            done
        done
    done
    if [ "$fail" -ne 0 ]; then
        echo "durability stage failed" >&2
        exit 1
    fi
}

TRACE_WORKLOADS="hashmap kmeans"
TRACE_SEEDS="1 2"

stage_tracing() {
    echo "== stage tracing: span attribution gate ($FAULT_SPEC; seeds $TRACE_SEEDS) =="
    dune build bin/trackfm_cli.exe
    mkdir -p _ci/tracing
    fail=0
    # Zero-cost check, read the strong way: a run with spans, trace and
    # attribution all enabled must leave every counter byte-identical to
    # the telemetry-off goldens in ci/golden/.
    for w in $FAULT_WORKLOADS; do
        for seed in $FAULT_SEEDS; do
            out="_ci/tracing/$w-seed$seed-counters.json"
            "$CLI" run -w "$w" -s trackfm -m 25 \
                --faults "$FAULT_SPEC" --fault-seed "$seed" \
                --trace "_ci/tracing/$w-seed$seed-trace.json" \
                --attribution "_ci/tracing/$w-seed$seed-attr-on.json" \
                --counters-json "$out" >/dev/null
            golden="ci/golden/$w-seed$seed.json"
            if ! cmp -s "$golden" "$out"; then
                echo "tracing: PERTURBED: $w seed $seed counters differ from $golden with telemetry on" >&2
                diff "$golden" "$out" >&2 || true
                fail=1
            fi
        done
    done
    # The exported Chrome trace must satisfy the checked-in schema.
    for f in _ci/tracing/*-trace.json; do
        if ! "$CLI" validate --schema ci/trace_schema.json "$f" >/dev/null; then
            echo "tracing: $f violates ci/trace_schema.json" >&2
            fail=1
        fi
    done
    # Attribution determinism: same workload, seed and build must export
    # byte-identical attribution JSON across two runs.
    for w in $TRACE_WORKLOADS; do
        for seed in $TRACE_SEEDS; do
            out="_ci/tracing/$w-seed$seed-attr.json"
            "$CLI" run -w "$w" -s trackfm -m 25 \
                --faults "$FAULT_SPEC" --fault-seed "$seed" \
                --attribution "$out" >/dev/null
            "$CLI" run -w "$w" -s trackfm -m 25 \
                --faults "$FAULT_SPEC" --fault-seed "$seed" \
                --attribution "$out.rerun" >/dev/null
            if ! cmp -s "$out" "$out.rerun"; then
                echo "tracing: NONDETERMINISTIC: $w seed $seed attribution differs between two runs" >&2
                fail=1
            fi
            # The invariant line is printed by the run itself; also make
            # sure the export carries a clean verdict.
            if ! grep -q '"violations":0' "$out"; then
                echo "tracing: $w seed $seed attribution reports invariant violations" >&2
                fail=1
            fi
        done
    done
    # A fault-preset run with the recorder armed must dump, and the dump
    # must be identical under the same fault seed.
    for seed in $TRACE_SEEDS; do
        fr="_ci/tracing/flight-seed$seed.json"
        "$CLI" run -w hashmap -s trackfm -m 25 \
            --faults "$FAULT_SPEC" --fault-seed "$seed" \
            --flight-recorder "$fr" >/dev/null
        "$CLI" run -w hashmap -s trackfm -m 25 \
            --faults "$FAULT_SPEC" --fault-seed "$seed" \
            --flight-recorder "$fr.rerun" >/dev/null
        if [ ! -s "$fr" ]; then
            echo "tracing: flight recorder did not dump for seed $seed" >&2
            fail=1
        elif ! cmp -s "$fr" "$fr.rerun"; then
            echo "tracing: NONDETERMINISTIC flight dump for seed $seed" >&2
            fail=1
        fi
    done
    if [ "$fail" -ne 0 ]; then
        echo "tracing stage failed" >&2
        exit 1
    fi
}

ENGINE_WORKLOADS="stream-sum hashmap"
ENGINE_SEEDS="1 2 3"

SERVING_BACKENDS="trackfm fastswap aifm"
SERVING_RATES="40 130"
SERVING_ARGS="--requests 1500 --keys 4096 --budget 32768 --faults medium --fault-seed 1 --seed 42"

serving_run() {
    # $1 backend, $2 rate, $3 output JSON
    "$CLI" serve -b "$1" --rate "$2" $SERVING_ARGS \
        --serving-json "$3" >/dev/null
}

stage_serving() {
    echo "== stage serving: overload sweep determinism (rates $SERVING_RATES; faults medium, seed 1) =="
    dune build bin/trackfm_cli.exe
    mkdir -p _ci/serving
    fail=0
    for b in $SERVING_BACKENDS; do
        for rate in $SERVING_RATES; do
            out="_ci/serving/$b-r$rate.json"
            serving_run "$b" "$rate" "$out"
            serving_run "$b" "$rate" "$out.rerun"
            if ! cmp -s "$out" "$out.rerun"; then
                echo "serving: NONDETERMINISTIC: $b rate $rate differs between two runs" >&2
                diff "$out" "$out.rerun" >&2 || true
                fail=1
            fi
            golden="ci/golden/serving-$b-r$rate.json"
            if [ ! -f "$golden" ]; then
                echo "serving: missing golden $golden (regenerate with: ./ci.sh --update-golden)" >&2
                fail=1
            elif ! cmp -s "$golden" "$out"; then
                echo "serving: DRIFT: $b rate $rate differs from $golden" >&2
                diff "$golden" "$out" >&2 || true
                fail=1
            fi
        done
    done
    if [ "$fail" -ne 0 ]; then
        echo "serving stage failed" >&2
        exit 1
    fi
}

stage_engines() {
    echo "== stage engines: interp-vs-compiled differential matrix ($FAULT_SPEC; seeds $ENGINE_SEEDS) =="
    dune build bin/trackfm_cli.exe bench/main.exe
    mkdir -p _ci/engines
    fail=0
    # Every cell runs the identical workload/chunk-mode/fault-seed under
    # both engines; the deterministic counters JSON (inputs, checksum,
    # cycles, every counter) must be byte-identical. Gated-chunking
    # cells are additionally diffed against the checked-in goldens, so
    # the compiled engine is pinned to the same record the interpreter
    # has been pinned to since the faults stage landed.
    for w in $ENGINE_WORKLOADS; do
        for chunk in gated off; do
            for seed in $ENGINE_SEEDS; do
                base="_ci/engines/$w-$chunk-seed$seed"
                "$CLI" run -w "$w" -s trackfm -m 25 -c "$chunk" \
                    --faults "$FAULT_SPEC" --fault-seed "$seed" \
                    --engine interp --counters-json "$base-interp.json" >/dev/null
                "$CLI" run -w "$w" -s trackfm -m 25 -c "$chunk" \
                    --faults "$FAULT_SPEC" --fault-seed "$seed" \
                    --engine compiled --counters-json "$base-compiled.json" >/dev/null
                if ! cmp -s "$base-interp.json" "$base-compiled.json"; then
                    echo "engines: DIVERGED: $w chunk=$chunk seed $seed interp vs compiled" >&2
                    diff "$base-interp.json" "$base-compiled.json" >&2 || true
                    fail=1
                fi
                if [ "$chunk" = gated ]; then
                    golden="ci/golden/$w-seed$seed.json"
                    if ! cmp -s "$golden" "$base-compiled.json"; then
                        echo "engines: DRIFT: $w seed $seed compiled differs from $golden" >&2
                        diff "$golden" "$base-compiled.json" >&2 || true
                        fail=1
                    fi
                fi
            done
        done
    done
    # The check matrix must also hold under the compiled engine (check
    # re-runs every workload under both engines and requires identical
    # results and counters).
    "$CLI" check --engine compiled
    # Dispatch-throughput gate: engine_speedup must report PASS (at
    # least two cases >= 5x); full-size, not --quick, so the ratio is
    # measured on runs long enough to be stable.
    if ! dune exec bench/main.exe -- engine_speedup >_ci/engines/bench.log 2>&1; then
        cat _ci/engines/bench.log >&2
        echo "engines: engine_speedup experiment failed" >&2
        fail=1
    elif ! grep -q "engine_speedup PASS" _ci/engines/bench.log; then
        cat _ci/engines/bench.log >&2
        echo "engines: dispatch-throughput gate did not PASS" >&2
        fail=1
    fi
    if [ "$fail" -ne 0 ]; then
        echo "engines stage failed" >&2
        exit 1
    fi
}

stage_hybrid() {
    echo "== stage hybrid: routed-run determinism (routes $HYBRID_ROUTES; budgets $HYBRID_PCTS%) =="
    dune build bin/trackfm_cli.exe
    mkdir -p _ci/hybrid
    fail=0
    # Every routed run is repeated (byte-identical counters JSON
    # required), re-run under the compiled engine (must match the
    # interpreter bit for bit — the routing checker is enforced in both),
    # and the compiled record is diffed against the checked-in golden.
    for route in $HYBRID_ROUTES; do
        for pct in $HYBRID_PCTS; do
            base="_ci/hybrid/pointer-chase-$route-m$pct"
            "$CLI" run -w pointer-chase -s trackfm -m "$pct" --route "$route" \
                --engine interp --counters-json "$base-interp.json" >/dev/null
            "$CLI" run -w pointer-chase -s trackfm -m "$pct" --route "$route" \
                --engine interp --counters-json "$base-interp.json.rerun" >/dev/null
            if ! cmp -s "$base-interp.json" "$base-interp.json.rerun"; then
                echo "hybrid: NONDETERMINISTIC: pointer-chase route=$route m=$pct" >&2
                diff "$base-interp.json" "$base-interp.json.rerun" >&2 || true
                fail=1
            fi
            "$CLI" run -w pointer-chase -s trackfm -m "$pct" --route "$route" \
                --engine compiled --counters-json "$base-compiled.json" >/dev/null
            if ! cmp -s "$base-interp.json" "$base-compiled.json"; then
                echo "hybrid: DIVERGED: pointer-chase route=$route m=$pct interp vs compiled" >&2
                diff "$base-interp.json" "$base-compiled.json" >&2 || true
                fail=1
            fi
            golden="ci/golden/hybrid-pointer-chase-$route-m$pct.json"
            if [ ! -f "$golden" ]; then
                echo "hybrid: missing golden $golden (regenerate with: ./ci.sh --update-golden)" >&2
                fail=1
            elif ! cmp -s "$golden" "$base-compiled.json"; then
                echo "hybrid: DRIFT: route=$route m=$pct differs from $golden" >&2
                diff "$golden" "$base-compiled.json" >&2 || true
                fail=1
            fi
        done
    done
    # Shape-routed workload: llist's traversal is helper-hidden, so its
    # static routes exist only through the shape analysis. Same regimen:
    # run twice (byte-identical), cross-engine, diffed against goldens.
    for pct in $HYBRID_PCTS; do
        base="_ci/hybrid/llist-static-m$pct"
        "$CLI" run -w llist -s trackfm -m "$pct" --route static \
            --engine interp --counters-json "$base-interp.json" >/dev/null
        "$CLI" run -w llist -s trackfm -m "$pct" --route static \
            --engine interp --counters-json "$base-interp.json.rerun" >/dev/null
        if ! cmp -s "$base-interp.json" "$base-interp.json.rerun"; then
            echo "hybrid: NONDETERMINISTIC: llist route=static m=$pct" >&2
            diff "$base-interp.json" "$base-interp.json.rerun" >&2 || true
            fail=1
        fi
        "$CLI" run -w llist -s trackfm -m "$pct" --route static \
            --engine compiled --counters-json "$base-compiled.json" >/dev/null
        if ! cmp -s "$base-interp.json" "$base-compiled.json"; then
            echo "hybrid: DIVERGED: llist route=static m=$pct interp vs compiled" >&2
            diff "$base-interp.json" "$base-compiled.json" >&2 || true
            fail=1
        fi
        golden="ci/golden/hybrid-llist-static-m$pct.json"
        if [ ! -f "$golden" ]; then
            echo "hybrid: missing golden $golden (regenerate with: ./ci.sh --update-golden)" >&2
            fail=1
        elif ! cmp -s "$golden" "$base-compiled.json"; then
            echo "hybrid: DRIFT: llist m=$pct differs from $golden" >&2
            diff "$golden" "$base-compiled.json" >&2 || true
            fail=1
        fi
    done
    # Without shape facts the same compile must route nothing: the
    # --no-shapes run must be byte-identical to an unrouted run.
    "$CLI" run -w llist -s trackfm -m 25 --route off \
        --counters-json _ci/hybrid/llist-off.json >/dev/null
    "$CLI" run -w llist -s trackfm -m 25 --route static --no-shapes \
        --counters-json _ci/hybrid/llist-noshapes.json >/dev/null
    if ! cmp -s _ci/hybrid/llist-off.json _ci/hybrid/llist-noshapes.json; then
        echo "hybrid: shape-blind routing perturbed the helper-hidden workload" >&2
        diff _ci/hybrid/llist-off.json _ci/hybrid/llist-noshapes.json >&2 || true
        fail=1
    fi
    # Dynamic audit: the shadow validator executes the statically routed
    # llist under the interpreter's depth recorder and cross-checks every
    # static class; any mismatch (e.g. a lying shape summary that
    # misrouted a site) fails the gate.
    if ! "$CLI" shape -w llist --shadow -m 100 >_ci/hybrid/shadow.log 2>&1; then
        cat _ci/hybrid/shadow.log >&2
        echo "hybrid: shadow validator failed" >&2
        fail=1
    elif ! grep -q "shape-shadow PASS" _ci/hybrid/shadow.log; then
        cat _ci/hybrid/shadow.log >&2
        echo "hybrid: shadow validation did not PASS" >&2
        fail=1
    fi
    # Zero-routing identity: on a streaming workload the classifier
    # routes nothing, so route=static must be byte-identical to
    # route=off — down to the lazily-constructed swap never existing.
    "$CLI" run -w analytics -s trackfm -m 25 --route off \
        --counters-json _ci/hybrid/analytics-off.json >/dev/null
    "$CLI" run -w analytics -s trackfm -m 25 --route static \
        --counters-json _ci/hybrid/analytics-static.json >/dev/null
    if ! cmp -s _ci/hybrid/analytics-off.json _ci/hybrid/analytics-static.json; then
        echo "hybrid: routing perturbed an unrouted streaming workload" >&2
        diff _ci/hybrid/analytics-off.json _ci/hybrid/analytics-static.json >&2 || true
        fail=1
    fi
    # The two-directional performance gate (and the cross-engine
    # checksum identity) lives in the bench harness.
    if ! dune exec bench/main.exe -- hybrid_routing --quick >_ci/hybrid/bench.log 2>&1; then
        cat _ci/hybrid/bench.log >&2
        echo "hybrid: hybrid_routing experiment failed" >&2
        fail=1
    elif ! grep -q "hybrid_routing PASS" _ci/hybrid/bench.log; then
        cat _ci/hybrid/bench.log >&2
        echo "hybrid: routing gate did not PASS" >&2
        fail=1
    fi
    # Shape-analysis performance gate: routing helper-hidden chases must
    # beat the shape-blind hybrid (and nothing may route without shapes).
    if ! dune exec bench/main.exe -- shape_routing --quick >_ci/hybrid/shape-bench.log 2>&1; then
        cat _ci/hybrid/shape-bench.log >&2
        echo "hybrid: shape_routing experiment failed" >&2
        fail=1
    elif ! grep -q "shape_routing PASS" _ci/hybrid/shape-bench.log; then
        cat _ci/hybrid/shape-bench.log >&2
        echo "hybrid: shape-routing gate did not PASS" >&2
        fail=1
    fi
    if [ "$fail" -ne 0 ]; then
        echo "hybrid stage failed" >&2
        exit 1
    fi
}

# Refresh the checked-in goldens from the current build (run after an
# intentional counter/format change, then commit the diff).
update_golden() {
    echo "== update-golden: regenerating ci/golden/ =="
    dune build bin/trackfm_cli.exe
    mkdir -p ci/golden
    for w in $FAULT_WORKLOADS; do
        for seed in $FAULT_SEEDS; do
            "$CLI" run -w "$w" -s trackfm -m 25 \
                --faults "$FAULT_SPEC" --fault-seed "$seed" \
                --counters-json "ci/golden/$w-seed$seed.json" >/dev/null
            echo "  ci/golden/$w-seed$seed.json"
        done
    done
    for b in $SERVING_BACKENDS; do
        for rate in $SERVING_RATES; do
            serving_run "$b" "$rate" "ci/golden/serving-$b-r$rate.json"
            echo "  ci/golden/serving-$b-r$rate.json"
        done
    done
    for route in $HYBRID_ROUTES; do
        for pct in $HYBRID_PCTS; do
            "$CLI" run -w pointer-chase -s trackfm -m "$pct" --route "$route" \
                --counters-json "ci/golden/hybrid-pointer-chase-$route-m$pct.json" >/dev/null
            echo "  ci/golden/hybrid-pointer-chase-$route-m$pct.json"
        done
    done
    for pct in $HYBRID_PCTS; do
        "$CLI" run -w llist -s trackfm -m "$pct" --route static \
            --counters-json "ci/golden/hybrid-llist-static-m$pct.json" >/dev/null
        echo "  ci/golden/hybrid-llist-static-m$pct.json"
    done
}

if [ "${1:-}" = "--update-golden" ]; then
    update_golden
    exit 0
fi

if [ "${1:-}" = "--list" ]; then
    cat <<'EOF'
build       dune build @all
fmt         dune build @fmt (skipped when ocamlformat is not installed)
lint        guard-coverage verifier + elision witnesses + summary/classify/shape determinism
test        dune runtest (tier-1 unit/property/integration suites)
smoke       quick bench-harness run with metrics JSON export
faults      fault-injection determinism matrix vs ci/golden/
durability  replicated-tier crash matrix (r=1 must lose data, r=3 must not)
tracing     span tracing must not perturb counters; trace schema + attribution
engines     interp-vs-compiled differential matrix + dispatch-throughput gate
hybrid      routed-run determinism + goldens + routing/shape gates + shadow audit
serving     fixed-seed overload sweep of the serving tier vs ci/golden/
EOF
    exit 0
fi

STAGES="${*:-build fmt lint test smoke faults durability tracing engines hybrid serving}"

# Name the failing stage at the very end of the log, where it is hardest
# to miss (set -e aborts mid-stage, possibly far above).
CURRENT_STAGE=""
report_failure() {
    status=$?
    if [ "$status" -ne 0 ] && [ -n "$CURRENT_STAGE" ]; then
        echo "== stage $CURRENT_STAGE: FAILED ==" >&2
    fi
}
trap report_failure EXIT

for s in $STAGES; do
    CURRENT_STAGE=$s
    stage_t0=$(date +%s)
    case "$s" in
        build)      stage_build ;;
        fmt)        stage_fmt ;;
        lint)       stage_lint ;;
        test)       stage_test ;;
        smoke)      stage_smoke ;;
        faults)     stage_faults ;;
        durability) stage_durability ;;
        tracing)    stage_tracing ;;
        engines)    stage_engines ;;
        hybrid)     stage_hybrid ;;
        serving)    stage_serving ;;
        *)
            echo "unknown stage '$s' (see ./ci.sh --list)" >&2
            exit 2
            ;;
    esac
    echo "== stage $s: ok in $(($(date +%s) - stage_t0))s =="
done
CURRENT_STAGE=""

echo "CI OK"
