#!/bin/sh
# CI entry point: build, (optionally) check formatting, run the tests.
# Mirrors what the driver runs on every PR; keep it green.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build @all

# Formatting is advisory: the check only runs where ocamlformat is
# installed (the pinned build image does not ship it).
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== dune build @fmt =="
    dune build @fmt
else
    echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "CI OK"
